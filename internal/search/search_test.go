package search

import (
	"errors"
	"math"
	"testing"

	"repro/internal/param"
)

// quadSpace is a 2-D continuous metric space.
func quadSpace() *param.Space {
	return param.NewSpace(
		param.NewInterval("x", -10, 10),
		param.NewInterval("y", -10, 10),
	)
}

// quad is a convex bowl with minimum 1.0 at (3, -2).
func quad(c param.Config) float64 {
	dx, dy := c[0]-3, c[1]+2
	return 1.0 + dx*dx + dy*dy
}

// discreteSpace is a small, fully discrete, metric space.
func discreteSpace() *param.Space {
	return param.NewSpace(
		param.NewRatioInt("a", 0, 6),
		param.NewRatioInt("b", 0, 6),
	)
}

// discreteObj has its minimum 0 at (5, 1).
func discreteObj(c param.Config) float64 {
	da, db := c[0]-5, c[1]-1
	return da*da + db*db
}

func nominalSpace() *param.Space {
	return param.NewSpace(param.NewNominal("algo", "a", "b", "c"))
}

// drive runs the ask/tell loop for up to n iterations.
func drive(t *testing.T, s Strategy, space *param.Space, obj func(param.Config) float64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		c := s.Propose()
		if !space.Valid(c) {
			t.Fatalf("%s proposed invalid config %v at iteration %d", s.Name(), c, i)
		}
		s.Report(c, obj(c))
	}
}

func TestMetricStrategiesMinimizeQuadratic(t *testing.T) {
	cases := []struct {
		s    Strategy
		iter int
		tol  float64
	}{
		{NewNelderMead(), 200, 0.05},
		{NewParticleSwarm(10, 1), 600, 0.05},
		{NewDiffEvo(12, 1), 600, 0.05},
		{NewGenetic(12, 1), 800, 0.3},
		{NewRandom(1), 2000, 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.s.Name(), func(t *testing.T) {
			space := quadSpace()
			if err := tc.s.Start(space, param.Config{-8, 8}); err != nil {
				t.Fatal(err)
			}
			drive(t, tc.s, space, quad, tc.iter)
			best, val := tc.s.Best()
			if best == nil {
				t.Fatal("no best after search")
			}
			if val > 1.0+tc.tol {
				t.Errorf("%s best value %g, want ≤ %g (config %v)", tc.s.Name(), val, 1.0+tc.tol, best)
			}
			if tc.s.Evaluations() != tc.iter {
				t.Errorf("Evaluations = %d, want %d", tc.s.Evaluations(), tc.iter)
			}
		})
	}
}

func TestDiscreteStrategiesFindOptimum(t *testing.T) {
	cases := []struct {
		s    Strategy
		iter int
	}{
		{NewHillClimb(), 200},
		{NewExhaustive(), 49},
		{NewAnneal(7), 400},
	}
	for _, tc := range cases {
		t.Run(tc.s.Name(), func(t *testing.T) {
			space := discreteSpace()
			if err := tc.s.Start(space, param.Config{0, 6}); err != nil {
				t.Fatal(err)
			}
			drive(t, tc.s, space, discreteObj, tc.iter)
			best, val := tc.s.Best()
			if val != 0 {
				t.Errorf("%s best %g at %v, want 0 at (5,1)", tc.s.Name(), val, best)
			}
		})
	}
}

func TestNominalRejection(t *testing.T) {
	space := nominalSpace()
	rejecting := []Strategy{
		NewNelderMead(), NewHillClimb(), NewAnneal(1),
		NewParticleSwarm(4, 1), NewDiffEvo(4, 1),
	}
	for _, s := range rejecting {
		if s.Supports(space) {
			t.Errorf("%s claims to support a nominal space", s.Name())
		}
		err := s.Start(space, nil)
		if err == nil {
			t.Errorf("%s.Start on nominal space did not fail", s.Name())
			continue
		}
		var use *UnsupportedSpaceError
		if !errors.As(err, &use) {
			t.Errorf("%s.Start error %v is not UnsupportedSpaceError", s.Name(), err)
		} else if use.Strategy != s.Name() {
			t.Errorf("error names strategy %q, want %q", use.Strategy, s.Name())
		}
	}
	accepting := []Strategy{NewGenetic(4, 1), NewRandom(1), NewExhaustive(), NewFixed()}
	for _, s := range accepting {
		if !s.Supports(space) {
			t.Errorf("%s should support a nominal space", s.Name())
		}
		if err := s.Start(space, nil); err != nil {
			t.Errorf("%s.Start on nominal space failed: %v", s.Name(), err)
		}
	}
}

func TestGeneticOnPureNominalActsLikeSearch(t *testing.T) {
	// On a single nominal parameter the GA degenerates to (elitist) random
	// search — the paper's Section III-E observation. It must still find
	// the best label eventually.
	space := nominalSpace()
	obj := func(c param.Config) float64 { return []float64{5, 1, 9}[int(c[0])] }
	g := NewGenetic(6, 3)
	if err := g.Start(space, nil); err != nil {
		t.Fatal(err)
	}
	drive(t, g, space, obj, 120)
	best, val := g.Best()
	if val != 1 || int(best[0]) != 1 {
		t.Errorf("GA best %v=%g, want label index 1 value 1", best, val)
	}
}

func TestExhaustiveSweep(t *testing.T) {
	space := discreteSpace() // 49 configs
	e := NewExhaustive()
	if err := e.Start(space, param.Config{3, 3}); err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	first := e.Propose()
	if first[0] != 3 || first[1] != 3 {
		t.Errorf("sweep should start at the initial config, got %v", first)
	}
	for i := 0; i < 49; i++ {
		if e.Converged() {
			t.Fatalf("converged after only %d evaluations", i)
		}
		c := e.Propose()
		key := [2]int{int(c[0]), int(c[1])}
		if seen[key] {
			t.Fatalf("config %v proposed twice during sweep", c)
		}
		seen[key] = true
		e.Report(c, discreteObj(c))
	}
	if !e.Converged() {
		t.Error("not converged after full sweep")
	}
	if e.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", e.Remaining())
	}
	if len(seen) != 49 {
		t.Errorf("visited %d configs, want 49", len(seen))
	}
	// After the sweep the incumbent is proposed.
	c := e.Propose()
	if discreteObj(c) != 0 {
		t.Errorf("post-sweep proposal %v is not the optimum", c)
	}
}

func TestExhaustiveRejectsContinuous(t *testing.T) {
	e := NewExhaustive()
	if e.Supports(quadSpace()) {
		t.Error("exhaustive claims to support a continuous space")
	}
	if err := e.Start(quadSpace(), nil); err == nil {
		t.Error("Start on continuous space did not fail")
	}
}

func TestFixedStrategy(t *testing.T) {
	space := quadSpace()
	f := NewFixed()
	if err := f.Start(space, param.Config{1, 1}); err != nil {
		t.Fatal(err)
	}
	if f.Converged() {
		t.Error("converged before any report")
	}
	for i := 0; i < 5; i++ {
		c := f.Propose()
		if c[0] != 1 || c[1] != 1 {
			t.Fatalf("fixed proposed %v, want (1,1)", c)
		}
		f.Report(c, quad(c))
	}
	if !f.Converged() {
		t.Error("fixed not converged after reports")
	}
	_, val := f.Best()
	if val != quad(param.Config{1, 1}) {
		t.Errorf("best value %g wrong", val)
	}
}

func TestFixedDefaultsToCenter(t *testing.T) {
	f := NewFixed()
	if err := f.Start(quadSpace(), nil); err != nil {
		t.Fatal(err)
	}
	c := f.Propose()
	if c[0] != 0 || c[1] != 0 {
		t.Errorf("nil init should use the center, got %v", c)
	}
}

func TestNelderMeadConvergence(t *testing.T) {
	space := quadSpace()
	nm := NewNelderMead()
	if err := nm.Start(space, param.Config{-8, 8}); err != nil {
		t.Fatal(err)
	}
	iters := 0
	for !nm.Converged() && iters < 2000 {
		c := nm.Propose()
		nm.Report(c, quad(c))
		iters++
	}
	if !nm.Converged() {
		t.Fatalf("did not converge in %d iterations", iters)
	}
	best, val := nm.Best()
	if math.Abs(best[0]-3) > 0.1 || math.Abs(best[1]+2) > 0.1 {
		t.Errorf("converged to %v (val %g), want near (3,-2)", best, val)
	}
}

func TestNelderMeadOnIntegerGrid(t *testing.T) {
	// Integer snapping must not break the simplex machine.
	space := discreteSpace()
	nm := NewNelderMead()
	if err := nm.Start(space, param.Config{0, 0}); err != nil {
		t.Fatal(err)
	}
	drive(t, nm, space, discreteObj, 150)
	_, val := nm.Best()
	if val > 2 {
		t.Errorf("NM on grid: best %g, want ≤ 2", val)
	}
}

func TestNelderMeadSimplexAccessor(t *testing.T) {
	space := quadSpace()
	nm := NewNelderMead()
	if err := nm.Start(space, nil); err != nil {
		t.Fatal(err)
	}
	sx := nm.Simplex()
	if len(sx) != space.Dim()+1 {
		t.Fatalf("simplex has %d vertices, want %d", len(sx), space.Dim()+1)
	}
	for _, v := range sx {
		if !space.Valid(v) {
			t.Errorf("simplex vertex %v invalid", v)
		}
	}
}

func TestHillClimbConvergesAtLocalMin(t *testing.T) {
	space := discreteSpace()
	h := NewHillClimb()
	if err := h.Start(space, param.Config{5, 1}); err != nil {
		t.Fatal(err)
	}
	// Starting at the optimum: evaluate it plus the 4 neighbours, converge.
	for i := 0; i < 5; i++ {
		c := h.Propose()
		h.Report(c, discreteObj(c))
	}
	if !h.Converged() {
		t.Error("hill climb at optimum did not converge after ring")
	}
	// Post-convergence it must keep proposing the optimum.
	c := h.Propose()
	if discreteObj(c) != 0 {
		t.Errorf("post-convergence proposal %v not the optimum", c)
	}
}

func TestAnnealCoolsAndConverges(t *testing.T) {
	space := discreteSpace()
	a := NewAnneal(11)
	a.Cooling = 0.5 // fast cooling for test brevity
	if err := a.Start(space, param.Config{0, 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && !a.Converged(); i++ {
		c := a.Propose()
		a.Report(c, discreteObj(c))
	}
	if !a.Converged() {
		t.Error("anneal did not converge with fast cooling")
	}
}

func TestStrategiesBeforeStartPanic(t *testing.T) {
	for _, s := range []Strategy{NewNelderMead(), NewHillClimb(), NewAnneal(1), NewParticleSwarm(4, 1), NewDiffEvo(4, 1), NewGenetic(4, 1), NewRandom(1), NewExhaustive(), NewFixed()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s.Propose before Start did not panic", s.Name())
				}
			}()
			s.Propose()
		}()
	}
}

func TestBestBeforeAnyReport(t *testing.T) {
	nm := NewNelderMead()
	if err := nm.Start(quadSpace(), nil); err != nil {
		t.Fatal(err)
	}
	c, v := nm.Best()
	if c != nil || !math.IsInf(v, 1) {
		t.Errorf("Best before reports = (%v, %g), want (nil, +Inf)", c, v)
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		f, err := NewByName(name, 42)
		if err != nil {
			t.Errorf("NewByName(%q) failed: %v", name, err)
			continue
		}
		s := f()
		if s.Name() != name {
			t.Errorf("factory for %q built %q", name, s.Name())
		}
		// Factories must build independent instances.
		if f() == s {
			t.Errorf("factory for %q returned a shared instance", name)
		}
	}
	if _, err := NewByName("nope", 0); err == nil {
		t.Error("unknown name did not error")
	}
}

func TestStartArityMismatch(t *testing.T) {
	nm := NewNelderMead()
	if err := nm.Start(quadSpace(), param.Config{1}); err == nil {
		t.Error("arity mismatch init did not error")
	}
}

func TestEmptySpace(t *testing.T) {
	// A zero-dimensional space (algorithm without tunables) must work for
	// strategies that support it.
	empty := param.NewSpace()
	for _, s := range []Strategy{NewFixed(), NewNelderMead(), NewExhaustive()} {
		if err := s.Start(empty, nil); err != nil {
			t.Errorf("%s.Start on empty space failed: %v", s.Name(), err)
			continue
		}
		c := s.Propose()
		if len(c) != 0 {
			t.Errorf("%s proposed non-empty config %v on empty space", s.Name(), c)
		}
		s.Report(c, 5)
		if !s.Converged() {
			t.Errorf("%s not converged on empty space after one report", s.Name())
		}
	}
}

func TestUnsupportedSpaceErrorMessage(t *testing.T) {
	err := &UnsupportedSpaceError{Strategy: "nelder-mead", Reason: "nominal things"}
	want := "search: nelder-mead cannot search nominal things"
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
}

// Rosenbrock valley: a harder test exercising expansion/contraction/shrink
// paths of Nelder-Mead.
func TestNelderMeadRosenbrock(t *testing.T) {
	space := param.NewSpace(
		param.NewInterval("x", -2, 2),
		param.NewInterval("y", -1, 3),
	)
	rosen := func(c param.Config) float64 {
		x, y := c[0], c[1]
		return 100*(y-x*x)*(y-x*x) + (1-x)*(1-x)
	}
	nm := NewNelderMead()
	nm.Tol = 1e-8
	if err := nm.Start(space, param.Config{-1.2, 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000 && !nm.Converged(); i++ {
		c := nm.Propose()
		nm.Report(c, rosen(c))
	}
	_, val := nm.Best()
	if val > 0.01 {
		t.Errorf("Rosenbrock best %g, want < 0.01", val)
	}
}

func TestAnnealAcceptsUphillEarly(t *testing.T) {
	// With a very high temperature, annealing should accept worse moves and
	// therefore wander; with temperature ~0 it must behave greedily. We
	// check the greedy extreme: current never worsens.
	space := discreteSpace()
	a := NewAnneal(5)
	a.Temp = 1e-12
	a.MinTemp = 1e-300
	if err := a.Start(space, param.Config{3, 3}); err != nil {
		t.Fatal(err)
	}
	c0 := a.Propose()
	a.Report(c0, discreteObj(c0))
	cur := discreteObj(c0)
	for i := 0; i < 100; i++ {
		c := a.Propose()
		v := discreteObj(c)
		a.Report(c, v)
		if v < cur {
			cur = v
		}
		// a.cur's value can be read only indirectly: the next proposal is a
		// neighbour of the accepted point, so just assert Best never
		// exceeds the running minimum.
		if _, bv := a.Best(); bv > cur {
			t.Fatalf("best %g exceeds running min %g", bv, cur)
		}
	}
}

func TestHookeJeevesMinimizesQuadratic(t *testing.T) {
	space := quadSpace()
	h := NewHookeJeeves()
	if err := h.Start(space, param.Config{-8, 8}); err != nil {
		t.Fatal(err)
	}
	iters := 0
	for !h.Converged() && iters < 1500 {
		c := h.Propose()
		if !space.Valid(c) {
			t.Fatalf("invalid proposal %v", c)
		}
		h.Report(c, quad(c))
		iters++
	}
	if !h.Converged() {
		t.Fatalf("did not converge in %d iterations", iters)
	}
	best, val := h.Best()
	if val > 1.01 {
		t.Errorf("best %g at %v, want ≈ 1 at (3,-2)", val, best)
	}
}

func TestHookeJeevesOnIntegerGrid(t *testing.T) {
	space := discreteSpace()
	h := NewHookeJeeves()
	if err := h.Start(space, param.Config{0, 6}); err != nil {
		t.Fatal(err)
	}
	drive(t, h, space, discreteObj, 120)
	_, val := h.Best()
	if val > 1 {
		t.Errorf("grid best %g, want ≤ 1", val)
	}
}

func TestHookeJeevesRejectsNominal(t *testing.T) {
	h := NewHookeJeeves()
	if h.Supports(nominalSpace()) {
		t.Error("hooke-jeeves claims nominal support")
	}
	if err := h.Start(nominalSpace(), nil); err == nil {
		t.Error("Start on nominal space did not fail")
	}
}

func TestHookeJeevesEmptySpace(t *testing.T) {
	h := NewHookeJeeves()
	if err := h.Start(param.NewSpace(), nil); err != nil {
		t.Fatal(err)
	}
	c := h.Propose()
	h.Report(c, 1)
	if !h.Converged() {
		t.Error("empty space not converged after one report")
	}
}
