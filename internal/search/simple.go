package search

import (
	"math/rand"

	"repro/internal/param"
	"repro/internal/xrand"
)

// Fixed is the degenerate strategy that always proposes its initial
// configuration. It exists for algorithms that expose no tunable
// parameters (the string matching case study) and as a baseline.
type Fixed struct {
	recorder
	cfg param.Config
}

// NewFixed creates an unstarted Fixed strategy.
func NewFixed() *Fixed { return &Fixed{} }

// Name returns "fixed".
func (f *Fixed) Name() string { return "fixed" }

// Supports accepts every space, including the empty one.
func (f *Fixed) Supports(*param.Space) bool { return true }

// Start pins the strategy to the clamped initial configuration.
func (f *Fixed) Start(space *param.Space, init param.Config) error {
	c, err := prepStart(space, init)
	if err != nil {
		return err
	}
	f.reset()
	f.cfg = c
	return nil
}

// Propose returns the fixed configuration.
func (f *Fixed) Propose() param.Config {
	f.mustStarted("Fixed.Propose")
	return f.cfg.Clone()
}

// Report records the measurement.
func (f *Fixed) Report(c param.Config, v float64) {
	f.mustStarted("Fixed.Report")
	f.record(c, v)
}

// Converged is true once a single measurement exists; there is nothing to
// search.
func (f *Fixed) Converged() bool { return f.evals > 0 }

// Random is uniform random search: every proposal is an independent
// uniformly distributed point. The paper notes it is rarely used in
// practice but it remains the honest baseline.
type Random struct {
	recorder
	space *param.Space
	rng   *rand.Rand
	src   *xrand.Source
	seed  int64
}

// NewRandom creates a random-search strategy with a deterministic seed.
func NewRandom(seed int64) *Random { return &Random{seed: seed} }

// Name returns "random".
func (r *Random) Name() string { return "random" }

// Supports accepts every space: sampling needs no order or distance.
func (r *Random) Supports(*param.Space) bool { return true }

// Start binds the space and resets the random stream.
func (r *Random) Start(space *param.Space, init param.Config) error {
	if _, err := prepStart(space, init); err != nil {
		return err
	}
	r.reset()
	r.space = space
	r.src = xrand.New(r.seed)
	r.rng = r.src.Rand()
	return nil
}

// Propose returns a uniformly random configuration.
func (r *Random) Propose() param.Config {
	r.mustStarted("Random.Propose")
	return r.space.Random(r.rng)
}

// Report records the measurement.
func (r *Random) Report(c param.Config, v float64) {
	r.mustStarted("Random.Report")
	r.record(c, v)
}

// Converged is always false: random search never finishes on its own.
func (r *Random) Converged() bool { return false }

// Exhaustive systematically tries every configuration of a fully discrete
// space, then repeats its best. The paper observes this is optimal when the
// space is entirely nominal (one sample carries no information about other
// configurations) but inadequate for online tuning of mixed spaces because
// it is guaranteed to also select the worst configuration.
type Exhaustive struct {
	recorder
	space   *param.Space
	configs []param.Config
	next    int
}

// NewExhaustive creates an unstarted exhaustive-search strategy.
func NewExhaustive() *Exhaustive { return &Exhaustive{} }

// Name returns "exhaustive".
func (e *Exhaustive) Name() string { return "exhaustive" }

// Supports accepts any fully discrete space.
func (e *Exhaustive) Supports(space *param.Space) bool {
	return space != nil && (space.Dim() == 0 || space.Cardinality() > 0)
}

// Start enumerates the space up front. The sweep starts at the initial
// configuration's position so the caller-provided prior is evaluated first.
func (e *Exhaustive) Start(space *param.Space, init param.Config) error {
	c, err := prepStart(space, init)
	if err != nil {
		return err
	}
	if !e.Supports(space) {
		return errUnsupported(e, space)
	}
	e.reset()
	e.space = space
	e.configs = e.configs[:0]
	if err := space.Enumerate(func(cfg param.Config) bool {
		e.configs = append(e.configs, cfg.Clone())
		return true
	}); err != nil {
		return err
	}
	e.next = 0
	for i, cfg := range e.configs {
		if cfg.Equal(c) {
			e.next = i
			break
		}
	}
	// Rotate so the sweep begins at the initial configuration.
	if e.next > 0 {
		rot := make([]param.Config, 0, len(e.configs))
		rot = append(rot, e.configs[e.next:]...)
		rot = append(rot, e.configs[:e.next]...)
		e.configs = rot
		e.next = 0
	}
	return nil
}

// Propose returns the next unvisited configuration, or the incumbent once
// the sweep is complete.
func (e *Exhaustive) Propose() param.Config {
	e.mustStarted("Exhaustive.Propose")
	if e.next < len(e.configs) {
		return e.configs[e.next].Clone()
	}
	if best, _ := e.Best(); best != nil {
		return best
	}
	return e.space.Center()
}

// Report records the measurement and advances the sweep.
func (e *Exhaustive) Report(c param.Config, v float64) {
	e.mustStarted("Exhaustive.Report")
	e.record(c, v)
	if e.next < len(e.configs) && c.Equal(e.configs[e.next]) {
		e.next++
	}
}

// Converged is true once every configuration has been visited.
func (e *Exhaustive) Converged() bool { return e.hasSpace && e.next >= len(e.configs) }

// Remaining returns the number of configurations not yet visited.
func (e *Exhaustive) Remaining() int { return len(e.configs) - e.next }

func errUnsupported(s Strategy, space *param.Space) error {
	reason := "space"
	if space != nil && space.HasNominal() {
		reason = "space with nominal parameters (no order, distance, or neighbourhood)"
	} else if space != nil && space.Cardinality() == 0 {
		reason = "space with continuous dimensions"
	}
	return &UnsupportedSpaceError{Strategy: s.Name(), Reason: reason}
}

// UnsupportedSpaceError reports that a strategy cannot search a space,
// typically because the space contains nominal parameters — the central
// inadequacy of the classical toolbox that the paper addresses.
type UnsupportedSpaceError struct {
	Strategy string
	Reason   string
}

func (e *UnsupportedSpaceError) Error() string {
	return "search: " + e.Strategy + " cannot search " + e.Reason
}
