package search

import (
	"encoding/json"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/param"
	"repro/internal/xrand"
)

// Stateful is the optional interface for strategies whose internal state
// can be checkpointed. Export serializes the complete search state —
// enough that a Restore on a fresh instance reproduces the exact
// decision sequence of the original. Restore must be called on an
// instance that has already been Start()ed on the same space (with the
// same initial configuration); it overwrites the started state.
//
// Checkpoints are taken at iteration boundaries only (after a Report,
// before the next Propose), so transient proposal bookkeeping need not
// survive — with the exception of values that span Report boundaries,
// such as Nelder-Mead's centroid and reflection point, which are
// exported.
//
// All strategies constructed by NewByName implement Stateful.
type Stateful interface {
	Export() ([]byte, error)
	Restore([]byte) error
}

// recState is the serialized form of the embedded recorder.
type recState struct {
	BestCfg param.Config `json:"best_cfg,omitempty"`
	BestVal checkpoint.F `json:"best_val"`
	Evals   int          `json:"evals"`
}

func (r *recorder) exportRec() recState {
	return recState{BestCfg: cloneCfg(r.bestCfg), BestVal: checkpoint.F(r.bestVal), Evals: r.evals}
}

func (r *recorder) restoreRec(s recState) {
	r.bestCfg = cloneCfg(s.BestCfg)
	r.bestVal = float64(s.BestVal)
	r.evals = s.Evals
}

func cloneCfg(c param.Config) param.Config {
	if c == nil {
		return nil
	}
	return c.Clone()
}

func cloneCfgs(cs []param.Config) []param.Config {
	if cs == nil {
		return nil
	}
	out := make([]param.Config, len(cs))
	for i, c := range cs {
		out[i] = cloneCfg(c)
	}
	return out
}

func mustStartedState(r *recorder, name string) error {
	if !r.hasSpace {
		return fmt.Errorf("search: %s.Restore before Start", name)
	}
	return nil
}

func mustStartedExport(r *recorder, name string) error {
	if !r.hasSpace {
		return fmt.Errorf("search: %s.Export before Start", name)
	}
	return nil
}

// ---- Fixed ----

type fixedState struct {
	Cfg param.Config `json:"cfg"`
	Rec recState     `json:"rec"`
}

// Export serializes the strategy state for checkpointing.
func (f *Fixed) Export() ([]byte, error) {
	if err := mustStartedExport(&f.recorder, "Fixed"); err != nil {
		return nil, err
	}
	return json.Marshal(fixedState{Cfg: cloneCfg(f.cfg), Rec: f.exportRec()})
}

// Restore overwrites the state of a started instance.
func (f *Fixed) Restore(data []byte) error {
	if err := mustStartedState(&f.recorder, "Fixed"); err != nil {
		return err
	}
	var st fixedState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	f.cfg = cloneCfg(st.Cfg)
	f.restoreRec(st.Rec)
	return nil
}

// ---- Random ----

type randomState struct {
	Seed  int64    `json:"seed"`
	Drawn uint64   `json:"drawn"`
	Rec   recState `json:"rec"`
}

// Export serializes the strategy state for checkpointing.
func (r *Random) Export() ([]byte, error) {
	if err := mustStartedExport(&r.recorder, "Random"); err != nil {
		return nil, err
	}
	seed, drawn := r.src.State()
	return json.Marshal(randomState{Seed: seed, Drawn: drawn, Rec: r.exportRec()})
}

// Restore overwrites the state of a started instance.
func (r *Random) Restore(data []byte) error {
	if err := mustStartedState(&r.recorder, "Random"); err != nil {
		return err
	}
	var st randomState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	r.seed = st.Seed
	r.src = xrand.Restore(st.Seed, st.Drawn)
	r.rng = r.src.Rand()
	r.restoreRec(st.Rec)
	return nil
}

// ---- Exhaustive ----

type exhaustiveState struct {
	// Start is the first configuration of the rotated sweep, so a
	// restored instance can re-rotate its own enumeration to match even
	// if it was Start()ed with a different initial configuration (as
	// happens under the Restarting wrapper).
	Start param.Config `json:"start,omitempty"`
	Next  int          `json:"next"`
	Rec   recState     `json:"rec"`
}

// Export serializes the strategy state for checkpointing.
func (e *Exhaustive) Export() ([]byte, error) {
	if err := mustStartedExport(&e.recorder, "Exhaustive"); err != nil {
		return nil, err
	}
	st := exhaustiveState{Next: e.next, Rec: e.exportRec()}
	if len(e.configs) > 0 {
		st.Start = cloneCfg(e.configs[0])
	}
	return json.Marshal(st)
}

// Restore overwrites the state of a started instance.
func (e *Exhaustive) Restore(data []byte) error {
	if err := mustStartedState(&e.recorder, "Exhaustive"); err != nil {
		return err
	}
	var st exhaustiveState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(e.configs) > 0 && st.Start != nil {
		at := -1
		for i, cfg := range e.configs {
			if cfg.Equal(st.Start) {
				at = i
				break
			}
		}
		if at < 0 {
			return fmt.Errorf("search: Exhaustive.Restore: start config not in space")
		}
		if at > 0 {
			rot := make([]param.Config, 0, len(e.configs))
			rot = append(rot, e.configs[at:]...)
			rot = append(rot, e.configs[:at]...)
			e.configs = rot
		}
	}
	if st.Next < 0 || st.Next > len(e.configs) {
		return fmt.Errorf("search: Exhaustive.Restore: next index %d out of range", st.Next)
	}
	e.next = st.Next
	e.restoreRec(st.Rec)
	return nil
}

// ---- HillClimb ----

type hillClimbState struct {
	Cur       param.Config   `json:"cur"`
	CurVal    checkpoint.F   `json:"cur_val"`
	Neighbors []param.Config `json:"neighbors,omitempty"`
	HaveN     bool           `json:"have_n"`
	Idx       int            `json:"idx"`
	BestN     param.Config   `json:"best_n,omitempty"`
	BestNVal  checkpoint.F   `json:"best_n_val"`
	Done      bool           `json:"done"`
	CurKnown  bool           `json:"cur_known"`
	Rec       recState       `json:"rec"`
}

// Export serializes the strategy state for checkpointing.
func (h *HillClimb) Export() ([]byte, error) {
	if err := mustStartedExport(&h.recorder, "HillClimb"); err != nil {
		return nil, err
	}
	return json.Marshal(hillClimbState{
		Cur: cloneCfg(h.cur), CurVal: checkpoint.F(h.curVal),
		Neighbors: cloneCfgs(h.neighbors), HaveN: h.neighbors != nil,
		Idx: h.idx, BestN: cloneCfg(h.bestN), BestNVal: checkpoint.F(h.bestNVal),
		Done: h.done, CurKnown: h.curKnown, Rec: h.exportRec(),
	})
}

// Restore overwrites the state of a started instance.
func (h *HillClimb) Restore(data []byte) error {
	if err := mustStartedState(&h.recorder, "HillClimb"); err != nil {
		return err
	}
	var st hillClimbState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	h.cur = cloneCfg(st.Cur)
	h.curVal = float64(st.CurVal)
	if st.HaveN {
		h.neighbors = cloneCfgs(st.Neighbors)
		if h.neighbors == nil {
			h.neighbors = []param.Config{}
		}
	} else {
		h.neighbors = nil
	}
	if st.Idx < 0 || (st.HaveN && st.Idx > len(st.Neighbors)) {
		return fmt.Errorf("search: HillClimb.Restore: neighbour index %d out of range", st.Idx)
	}
	h.idx = st.Idx
	h.bestN = cloneCfg(st.BestN)
	h.bestNVal = float64(st.BestNVal)
	h.done = st.Done
	h.curKnown = st.CurKnown
	h.restoreRec(st.Rec)
	return nil
}

// ---- Anneal ----

type annealState struct {
	Seed   int64        `json:"seed"`
	Drawn  uint64       `json:"drawn"`
	Cur    param.Config `json:"cur"`
	CurVal checkpoint.F `json:"cur_val"`
	Known  bool         `json:"known"`
	Temp   checkpoint.F `json:"temp"`
	Rec    recState     `json:"rec"`
}

// Export serializes the strategy state for checkpointing.
func (a *Anneal) Export() ([]byte, error) {
	if err := mustStartedExport(&a.recorder, "Anneal"); err != nil {
		return nil, err
	}
	seed, drawn := a.src.State()
	return json.Marshal(annealState{
		Seed: seed, Drawn: drawn,
		Cur: cloneCfg(a.cur), CurVal: checkpoint.F(a.curVal), Known: a.known,
		Temp: checkpoint.F(a.Temp), Rec: a.exportRec(),
	})
}

// Restore overwrites the state of a started instance.
func (a *Anneal) Restore(data []byte) error {
	if err := mustStartedState(&a.recorder, "Anneal"); err != nil {
		return err
	}
	var st annealState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	a.seed = st.Seed
	a.src = xrand.Restore(st.Seed, st.Drawn)
	a.rng = a.src.Rand()
	a.cur = cloneCfg(st.Cur)
	a.curVal = float64(st.CurVal)
	a.known = st.Known
	a.Temp = float64(st.Temp)
	a.restoreRec(st.Rec)
	return nil
}

// ---- HookeJeeves ----

type hookeJeevesState struct {
	Base     param.Config `json:"base"`
	BaseVal  checkpoint.F `json:"base_val"`
	Cur      param.Config `json:"cur"`
	CurVal   checkpoint.F `json:"cur_val"`
	Step     []float64    `json:"step"`
	Axis     int          `json:"axis"`
	Dir      float64      `json:"dir"`
	HavePat  bool         `json:"have_pat"`
	Pattern  param.Config `json:"pattern,omitempty"`
	BaseKnow bool         `json:"base_know"`
	Rec      recState     `json:"rec"`
}

// Export serializes the strategy state for checkpointing.
func (h *HookeJeeves) Export() ([]byte, error) {
	if err := mustStartedExport(&h.recorder, "HookeJeeves"); err != nil {
		return nil, err
	}
	step := make([]float64, len(h.step))
	copy(step, h.step)
	return json.Marshal(hookeJeevesState{
		Base: cloneCfg(h.base), BaseVal: checkpoint.F(h.baseVal),
		Cur: cloneCfg(h.cur), CurVal: checkpoint.F(h.curVal),
		Step: step, Axis: h.axis, Dir: h.dir,
		HavePat: h.havePat, Pattern: cloneCfg(h.pattern),
		BaseKnow: h.baseKnow, Rec: h.exportRec(),
	})
}

// Restore overwrites the state of a started instance.
func (h *HookeJeeves) Restore(data []byte) error {
	if err := mustStartedState(&h.recorder, "HookeJeeves"); err != nil {
		return err
	}
	var st hookeJeevesState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Step) != h.space.Dim() {
		return fmt.Errorf("search: HookeJeeves.Restore: %d steps for a %d-dimensional space", len(st.Step), h.space.Dim())
	}
	if st.Axis < 0 || (h.space.Dim() > 0 && st.Axis >= h.space.Dim()) {
		return fmt.Errorf("search: HookeJeeves.Restore: axis %d out of range", st.Axis)
	}
	h.base = cloneCfg(st.Base)
	h.baseVal = float64(st.BaseVal)
	h.cur = cloneCfg(st.Cur)
	h.curVal = float64(st.CurVal)
	h.step = make([]float64, len(st.Step))
	copy(h.step, st.Step)
	h.axis = st.Axis
	h.dir = st.Dir
	h.havePat = st.HavePat
	h.pattern = cloneCfg(st.Pattern)
	h.baseKnow = st.BaseKnow
	h.restoreRec(st.Rec)
	return nil
}

// ---- NelderMead ----

type nmVertexState struct {
	X param.Config `json:"x"`
	F checkpoint.F `json:"f"`
}

type nelderMeadState struct {
	Simplex []nmVertexState `json:"simplex"`
	Phase   int             `json:"phase"`
	Idx     int             `json:"idx"`
	// Centroid, XR and FR span Report boundaries: they are computed
	// during the reflection Propose and consumed by contraction steps
	// several Reports later, so they must survive a checkpoint.
	Centroid param.Config `json:"centroid,omitempty"`
	XR       param.Config `json:"xr,omitempty"`
	FR       checkpoint.F `json:"fr"`
	Rec      recState     `json:"rec"`
}

// Export serializes the strategy state for checkpointing.
func (n *NelderMead) Export() ([]byte, error) {
	if err := mustStartedExport(&n.recorder, "NelderMead"); err != nil {
		return nil, err
	}
	vs := make([]nmVertexState, len(n.simplex))
	for i, v := range n.simplex {
		vs[i] = nmVertexState{X: cloneCfg(v.x), F: checkpoint.F(v.f)}
	}
	return json.Marshal(nelderMeadState{
		Simplex: vs, Phase: int(n.phase), Idx: n.idx,
		Centroid: cloneCfg(n.centroid), XR: cloneCfg(n.xr), FR: checkpoint.F(n.fr),
		Rec: n.exportRec(),
	})
}

// Restore overwrites the state of a started instance.
func (n *NelderMead) Restore(data []byte) error {
	if err := mustStartedState(&n.recorder, "NelderMead"); err != nil {
		return err
	}
	var st nelderMeadState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if d := n.space.Dim(); d > 0 && len(st.Simplex) != d+1 {
		return fmt.Errorf("search: NelderMead.Restore: %d vertices for a %d-dimensional space", len(st.Simplex), d)
	}
	if st.Phase < int(nmInit) || st.Phase > int(nmShrink) {
		return fmt.Errorf("search: NelderMead.Restore: bad phase %d", st.Phase)
	}
	if st.Idx < 0 || st.Idx > len(st.Simplex) {
		return fmt.Errorf("search: NelderMead.Restore: vertex index %d out of range", st.Idx)
	}
	sim := make([]nmVertex, len(st.Simplex))
	for i, v := range st.Simplex {
		sim[i] = nmVertex{x: cloneCfg(v.X), f: float64(v.F)}
	}
	n.simplex = sim
	n.phase = nmPhase(st.Phase)
	n.idx = st.Idx
	n.centroid = cloneCfg(st.Centroid)
	n.xr = cloneCfg(st.XR)
	n.fr = float64(st.FR)
	n.pending = nil
	n.restoreRec(st.Rec)
	return nil
}

// ---- ParticleSwarm ----

type psoState struct {
	Seed       int64          `json:"seed"`
	Drawn      uint64         `json:"drawn"`
	Pos        []param.Config `json:"pos"`
	Vel        []param.Config `json:"vel"`
	PBest      []param.Config `json:"p_best"`
	PBestVal   []checkpoint.F `json:"p_best_val"`
	GBest      param.Config   `json:"g_best,omitempty"`
	GBestVal   checkpoint.F   `json:"g_best_val"`
	SweepBest  checkpoint.F   `json:"sweep_best"`
	Idx        int            `json:"idx"`
	Stagnation int            `json:"stagnation"`
	Rec        recState       `json:"rec"`
}

// Export serializes the strategy state for checkpointing.
func (p *ParticleSwarm) Export() ([]byte, error) {
	if err := mustStartedExport(&p.recorder, "ParticleSwarm"); err != nil {
		return nil, err
	}
	vals := make([]checkpoint.F, len(p.pBestVal))
	for i, v := range p.pBestVal {
		vals[i] = checkpoint.F(v)
	}
	return json.Marshal(psoState{
		Seed: p.seed, Drawn: drawnOf(p.src),
		Pos: cloneCfgs(p.pos), Vel: cloneCfgs(p.vel),
		PBest: cloneCfgs(p.pBest), PBestVal: vals,
		GBest: cloneCfg(p.gBest), GBestVal: checkpoint.F(p.gBestVal),
		SweepBest: checkpoint.F(p.sweepBest),
		Idx:       p.idx, Stagnation: p.stagnation, Rec: p.exportRec(),
	})
}

// Restore overwrites the state of a started instance.
func (p *ParticleSwarm) Restore(data []byte) error {
	if err := mustStartedState(&p.recorder, "ParticleSwarm"); err != nil {
		return err
	}
	var st psoState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Pos) != p.size || len(st.Vel) != p.size || len(st.PBest) != p.size || len(st.PBestVal) != p.size {
		return fmt.Errorf("search: ParticleSwarm.Restore: population size mismatch (want %d)", p.size)
	}
	if st.Idx < 0 || st.Idx >= p.size {
		return fmt.Errorf("search: ParticleSwarm.Restore: particle index %d out of range", st.Idx)
	}
	p.seed = st.Seed
	p.src = xrand.Restore(st.Seed, st.Drawn)
	p.rng = p.src.Rand()
	p.pos = cloneCfgs(st.Pos)
	p.vel = cloneCfgs(st.Vel)
	p.pBest = cloneCfgs(st.PBest)
	p.pBestVal = make([]float64, p.size)
	for i, v := range st.PBestVal {
		p.pBestVal[i] = float64(v)
	}
	p.gBest = cloneCfg(st.GBest)
	p.gBestVal = float64(st.GBestVal)
	p.sweepBest = float64(st.SweepBest)
	p.idx = st.Idx
	p.stagnation = st.Stagnation
	p.restoreRec(st.Rec)
	return nil
}

// ---- Genetic ----

type geneticState struct {
	Seed   int64          `json:"seed"`
	Drawn  uint64         `json:"drawn"`
	Pop    []param.Config `json:"pop"`
	Vals   []checkpoint.F `json:"vals"`
	Idx    int            `json:"idx"`
	Gen    int            `json:"gen"`
	Stale  int            `json:"stale"`
	PrevTV checkpoint.F   `json:"prev_tv"`
	Rec    recState       `json:"rec"`
}

// Export serializes the strategy state for checkpointing.
func (g *Genetic) Export() ([]byte, error) {
	if err := mustStartedExport(&g.recorder, "Genetic"); err != nil {
		return nil, err
	}
	vals := make([]checkpoint.F, len(g.vals))
	for i, v := range g.vals {
		vals[i] = checkpoint.F(v)
	}
	return json.Marshal(geneticState{
		Seed: g.seed, Drawn: drawnOf(g.src),
		Pop: cloneCfgs(g.pop), Vals: vals,
		Idx: g.idx, Gen: g.gen, Stale: g.stale, PrevTV: checkpoint.F(g.prevTV),
		Rec: g.exportRec(),
	})
}

// Restore overwrites the state of a started instance.
func (g *Genetic) Restore(data []byte) error {
	if err := mustStartedState(&g.recorder, "Genetic"); err != nil {
		return err
	}
	var st geneticState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Pop) != g.size || len(st.Vals) != g.size {
		return fmt.Errorf("search: Genetic.Restore: population size mismatch (want %d)", g.size)
	}
	if st.Idx < 0 || st.Idx >= g.size {
		return fmt.Errorf("search: Genetic.Restore: individual index %d out of range", st.Idx)
	}
	g.seed = st.Seed
	g.src = xrand.Restore(st.Seed, st.Drawn)
	g.rng = g.src.Rand()
	g.pop = cloneCfgs(st.Pop)
	g.vals = make([]float64, g.size)
	for i, v := range st.Vals {
		g.vals[i] = float64(v)
	}
	g.idx = st.Idx
	g.gen = st.Gen
	g.stale = st.Stale
	g.prevTV = float64(st.PrevTV)
	g.restoreRec(st.Rec)
	return nil
}

// ---- DiffEvo ----

type diffEvoState struct {
	Seed         int64          `json:"seed"`
	Drawn        uint64         `json:"drawn"`
	Pop          []param.Config `json:"pop"`
	Vals         []checkpoint.F `json:"vals"`
	Idx          int            `json:"idx"`
	Seeded       int            `json:"seeded"`
	Stale        int            `json:"stale"`
	Best         checkpoint.F   `json:"best"`
	PassImproved bool           `json:"pass_improved"`
	Rec          recState       `json:"rec"`
}

// Export serializes the strategy state for checkpointing.
func (d *DiffEvo) Export() ([]byte, error) {
	if err := mustStartedExport(&d.recorder, "DiffEvo"); err != nil {
		return nil, err
	}
	vals := make([]checkpoint.F, len(d.vals))
	for i, v := range d.vals {
		vals[i] = checkpoint.F(v)
	}
	return json.Marshal(diffEvoState{
		Seed: d.seed, Drawn: drawnOf(d.src),
		Pop: cloneCfgs(d.pop), Vals: vals,
		Idx: d.idx, Seeded: d.seeded, Stale: d.stale,
		Best: checkpoint.F(d.best), PassImproved: d.passImproved,
		Rec: d.exportRec(),
	})
}

// Restore overwrites the state of a started instance.
func (d *DiffEvo) Restore(data []byte) error {
	if err := mustStartedState(&d.recorder, "DiffEvo"); err != nil {
		return err
	}
	var st diffEvoState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Pop) != d.size || len(st.Vals) != d.size {
		return fmt.Errorf("search: DiffEvo.Restore: population size mismatch (want %d)", d.size)
	}
	if st.Idx < 0 || st.Idx >= d.size || st.Seeded < 0 || st.Seeded > d.size {
		return fmt.Errorf("search: DiffEvo.Restore: index out of range")
	}
	d.seed = st.Seed
	d.src = xrand.Restore(st.Seed, st.Drawn)
	d.rng = d.src.Rand()
	d.pop = cloneCfgs(st.Pop)
	d.vals = make([]float64, d.size)
	for i, v := range st.Vals {
		d.vals[i] = float64(v)
	}
	d.idx = st.Idx
	d.seeded = st.Seeded
	d.stale = st.Stale
	d.best = float64(st.Best)
	d.passImproved = st.PassImproved
	d.trial = nil
	d.restoreRec(st.Rec)
	return nil
}

// ---- Restarting ----

type restartingState struct {
	Seed     int64           `json:"seed"`
	Drawn    uint64          `json:"drawn"`
	Restarts int             `json:"restarts"`
	FromBest bool            `json:"from_best"`
	Inner    json.RawMessage `json:"inner"`
	Rec      recState        `json:"rec"`
}

// Export serializes the wrapper and its current inner strategy. The
// inner strategy must itself be Stateful.
func (r *Restarting) Export() ([]byte, error) {
	if err := mustStartedExport(&r.recorder, "Restarting"); err != nil {
		return nil, err
	}
	s, ok := r.inner.(Stateful)
	if !ok {
		return nil, fmt.Errorf("search: Restarting inner strategy %s is not Stateful", r.inner.Name())
	}
	inner, err := s.Export()
	if err != nil {
		return nil, err
	}
	return json.Marshal(restartingState{
		Seed: r.seed, Drawn: drawnOf(r.src),
		Restarts: r.restarts, FromBest: r.fromBest,
		Inner: inner, Rec: r.exportRec(),
	})
}

// Restore overwrites the state of a started instance, including the
// inner strategy (which Start has already created and started).
func (r *Restarting) Restore(data []byte) error {
	if err := mustStartedState(&r.recorder, "Restarting"); err != nil {
		return err
	}
	var st restartingState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	s, ok := r.inner.(Stateful)
	if !ok {
		return fmt.Errorf("search: Restarting inner strategy %s is not Stateful", r.inner.Name())
	}
	if err := s.Restore(st.Inner); err != nil {
		return err
	}
	r.seed = st.Seed
	r.src = xrand.Restore(st.Seed, st.Drawn)
	r.rng = r.src.Rand()
	r.restarts = st.Restarts
	r.fromBest = st.FromBest
	r.restoreRec(st.Rec)
	return nil
}

// drawnOf reads a source's position, tolerating a nil source (strategy
// exported before Start would have failed earlier anyway).
func drawnOf(src *xrand.Source) uint64 {
	if src == nil {
		return 0
	}
	_, drawn := src.State()
	return drawn
}
