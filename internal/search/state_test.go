package search

import (
	"math"
	"testing"

	"repro/internal/param"
)

// stateCases enumerates every NewByName strategy plus the Restarting
// wrapper, each with a space it supports.
func stateCases() []struct {
	name  string
	make  func() Strategy
	space *param.Space
	init  param.Config
	obj   func(param.Config) float64
} {
	return []struct {
		name  string
		make  func() Strategy
		space *param.Space
		init  param.Config
		obj   func(param.Config) float64
	}{
		{"fixed", func() Strategy { return NewFixed() }, quadSpace(), param.Config{1, 1}, quad},
		{"random", func() Strategy { return NewRandom(42) }, quadSpace(), nil, quad},
		{"exhaustive", func() Strategy { return NewExhaustive() }, discreteSpace(), param.Config{2, 3}, discreteObj},
		{"hillclimb", func() Strategy { return NewHillClimb() }, discreteSpace(), nil, discreteObj},
		{"nelder-mead", func() Strategy { return NewNelderMead() }, quadSpace(), nil, quad},
		{"hooke-jeeves", func() Strategy { return NewHookeJeeves() }, quadSpace(), nil, quad},
		{"anneal", func() Strategy { return NewAnneal(42) }, quadSpace(), nil, quad},
		{"pso", func() Strategy { return NewParticleSwarm(DefaultSwarmSize, 42) }, quadSpace(), nil, quad},
		{"genetic", func() Strategy { return NewGenetic(DefaultPopulation, 42) }, quadSpace(), nil, quad},
		{"diffevo", func() Strategy { return NewDiffEvo(DefaultPopulation, 42) }, quadSpace(), nil, quad},
		{"restarting", func() Strategy {
			return NewRestarting(func() Strategy { return NewAnneal(7) }, 13)
		}, quadSpace(), nil, quad},
	}
}

// TestStateRoundTrip is the property test of the checkpoint contract: for
// every strategy and several interruption points, exporting mid-run and
// restoring into a fresh Start'ed instance must leave both copies
// proposing identical configurations forever after.
func TestStateRoundTrip(t *testing.T) {
	for _, c := range stateCases() {
		for _, warm := range []int{0, 1, 3, 7, 23, 60} {
			a := c.make()
			if err := a.Start(c.space, c.init); err != nil {
				t.Fatalf("%s: Start: %v", c.name, err)
			}
			for i := 0; i < warm; i++ {
				p := a.Propose()
				a.Report(p, c.obj(p))
			}
			sa, ok := a.(Stateful)
			if !ok {
				t.Fatalf("%s is not Stateful", c.name)
			}
			data, err := sa.Export()
			if err != nil {
				t.Fatalf("%s: Export after %d iters: %v", c.name, warm, err)
			}

			b := c.make()
			if err := b.Start(c.space, c.init); err != nil {
				t.Fatalf("%s: Start b: %v", c.name, err)
			}
			if err := b.(Stateful).Restore(data); err != nil {
				t.Fatalf("%s: Restore after %d iters: %v", c.name, warm, err)
			}

			if a.Evaluations() != b.Evaluations() {
				t.Fatalf("%s@%d: evaluations %d vs %d", c.name, warm, a.Evaluations(), b.Evaluations())
			}
			for i := 0; i < 40; i++ {
				pa, pb := a.Propose(), b.Propose()
				if !pa.Equal(pb) {
					t.Fatalf("%s@%d: proposal %d diverged: %v vs %v", c.name, warm, i, pa, pb)
				}
				v := c.obj(pa)
				a.Report(pa, v)
				b.Report(pb, v)
			}
			ca, va := a.Best()
			cb, vb := b.Best()
			if va != vb || !ca.Equal(cb) {
				t.Fatalf("%s@%d: best diverged: %v=%g vs %v=%g", c.name, warm, ca, va, cb, vb)
			}
			if a.Converged() != b.Converged() {
				t.Fatalf("%s@%d: convergence flags diverged", c.name, warm)
			}
		}
	}
}

// TestRestoreAlsoRestoresIncumbent verifies the recorder travels with the
// state: a restored strategy knows the best point found before the crash.
func TestRestoreAlsoRestoresIncumbent(t *testing.T) {
	a := NewHookeJeeves()
	if err := a.Start(quadSpace(), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p := a.Propose()
		a.Report(p, quad(p))
	}
	data, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	b := NewHookeJeeves()
	if err := b.Start(quadSpace(), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	ca, va := a.Best()
	cb, vb := b.Best()
	if math.IsInf(vb, 1) || !ca.Equal(cb) || va != vb {
		t.Fatalf("incumbent lost: %v=%g vs %v=%g", ca, va, cb, vb)
	}
}

// TestRestoreRejectsBadState: damage must produce an error, not a panic
// or a silently corrupted strategy.
func TestRestoreRejectsBadState(t *testing.T) {
	for _, c := range stateCases() {
		s := c.make()
		if err := s.Start(c.space, c.init); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		st := s.(Stateful)
		if err := st.Restore([]byte(`{`)); err == nil {
			t.Errorf("%s: restoring truncated JSON succeeded", c.name)
		}
		if err := st.Restore([]byte(`nope`)); err == nil {
			t.Errorf("%s: restoring garbage succeeded", c.name)
		}
	}
}

// TestExportBeforeStartFails: there is no meaningful state before Start.
func TestExportBeforeStartFails(t *testing.T) {
	for _, c := range stateCases() {
		if _, err := c.make().(Stateful).Export(); err == nil {
			t.Errorf("%s: Export before Start succeeded", c.name)
		}
	}
}

// TestRestoreAcrossDifferentInit: Exhaustive rotates its sweep around the
// starting configuration, so a restore into an instance started elsewhere
// must re-anchor to the exported sweep.
func TestRestoreAcrossDifferentInit(t *testing.T) {
	a := NewExhaustive()
	if err := a.Start(discreteSpace(), param.Config{2, 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		p := a.Propose()
		a.Report(p, discreteObj(p))
	}
	data, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	b := NewExhaustive()
	if err := b.Start(discreteSpace(), param.Config{6, 0}); err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pa, pb := a.Propose(), b.Propose()
		if !pa.Equal(pb) {
			t.Fatalf("proposal %d diverged after re-anchoring: %v vs %v", i, pa, pb)
		}
		v := discreteObj(pa)
		a.Report(pa, v)
		b.Report(pb, v)
	}
}
