package stats

import "math"

// Online change-point detection over per-arm cost streams. Three
// complementary pieces, composed by core's drift watchdog:
//
//   - PageHinkley: a two-sided Page–Hinkley test, the classic sequential
//     CUSUM variant for detecting a sustained shift of the mean. Cheap
//     (O(1) per observation), sensitive to slow drifts, but needs its
//     magnitude (Delta) and threshold (Lambda) chosen for the stream's
//     scale — feeding log-costs makes both relative.
//   - AdaptiveWindow: an ADWIN-style adaptive sliding window backed by an
//     exponential histogram. It keeps a window of recent observations
//     and cuts its oldest portion whenever two sub-windows have means
//     that differ beyond a variance-aware Hoeffding bound — detecting
//     abrupt shifts without a tuned magnitude parameter, at O(log n)
//     memory.
//   - MADWindow: a robust outlier screen (median absolute deviation over
//     a short window) that distinguishes isolated spikes — which should
//     not feed the detectors at all — from genuine level shifts, which
//     arrive as *runs* of "outliers" and must pass through.
//
// All three are plain value types driven by Add; none is safe for
// concurrent use (core serializes observations per arm under its
// decision lock).

// PageHinkley is a two-sided Page–Hinkley change detector. It tracks the
// running mean of the stream and accumulates deviations from it; when
// the cumulative deviation departs more than Lambda from its historical
// extremum in either direction, a change is signalled.
//
// Delta is the half-width of the indifference band: shifts smaller than
// Delta (per observation, in the stream's unit) are ignored. Lambda is
// the detection threshold — larger values trade detection delay for
// fewer false alarms.
type PageHinkley struct {
	// Delta is the magnitude tolerance (indifference half-width).
	Delta float64
	// Lambda is the detection threshold.
	Lambda float64
	// MinObs is the minimum number of observations before the test may
	// fire (the running mean is meaningless on the first few samples).
	MinObs int

	n       int
	mean    float64
	incSum  float64 // cumulative (x - mean - delta): grows on an upward shift
	incMin  float64 // historical minimum of incSum
	incMinN int     // n at which incMin was last lowered
	decSum  float64 // cumulative (x - mean + delta): shrinks on a downward shift
	decMax  float64 // historical maximum of decSum
	decMaxN int     // n at which decMax was last raised
	postLen int     // post-change length estimate set at the last firing Add
}

// NewPageHinkley returns a detector with the given tolerance, threshold
// and warmup length.
func NewPageHinkley(delta, lambda float64, minObs int) *PageHinkley {
	return &PageHinkley{Delta: delta, Lambda: lambda, MinObs: minObs}
}

// Add feeds one observation and reports whether a change was detected.
// After a detection the caller decides whether to Reset; without a reset
// the test keeps firing while the excursion persists. Non-finite inputs
// are ignored (the guard layer upstream penalizes them separately).
func (p *PageHinkley) Add(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	p.n++
	// Running mean BEFORE the deviation terms, per the standard
	// formulation: the first observation contributes zero deviation.
	p.mean += (x - p.mean) / float64(p.n)
	p.incSum += x - p.mean - p.Delta
	if p.incSum < p.incMin {
		p.incMin = p.incSum
		p.incMinN = p.n
	}
	p.decSum += x - p.mean + p.Delta
	if p.decSum > p.decMax {
		p.decMax = p.decSum
		p.decMaxN = p.n
	}
	if p.n < p.MinObs {
		return false
	}
	switch {
	case p.incSum-p.incMin > p.Lambda:
		p.postLen = p.n - p.incMinN
	case p.decMax-p.decSum > p.Lambda:
		p.postLen = p.n - p.decMaxN
	default:
		return false
	}
	return true
}

// PostShiftLen estimates, after a firing Add, how many of the stream's
// most recent observations lie past the change-point: the cumulative
// statistic reaches its extremum right before the shift starts pushing
// it away, so the extremum's position localizes the change. Change-point
// consumers (core's drift watchdog) use this to size how much history
// survives a reset. Zero before any detection.
func (p *PageHinkley) PostShiftLen() int { return p.postLen }

// Reset forgets all state (called after a detection is acted upon).
func (p *PageHinkley) Reset() {
	p.n, p.mean = 0, 0
	p.incSum, p.incMin, p.incMinN = 0, 0, 0
	p.decSum, p.decMax, p.decMaxN = 0, 0, 0
	p.postLen = 0
}

// N returns the number of observations since the last reset.
func (p *PageHinkley) N() int { return p.n }

// Mean returns the running mean since the last reset (0 before any
// observation).
func (p *PageHinkley) Mean() float64 { return p.mean }

// adwinBucket is one exponential-histogram bucket: the sum and sum of
// squares of 2^level consecutive observations.
type adwinBucket struct {
	sum   float64
	sumSq float64
	count int
}

// AdaptiveWindow is an ADWIN-style adaptive window. Observations enter
// as singleton buckets; same-size buckets merge pairwise once more than
// MaxBuckets of a size accumulate, so memory is O(MaxBuckets·log n).
// After every insertion the window is cut from the old end while any
// old/new split has sub-window means differing beyond a variance-aware
// Hoeffding bound at confidence Delta.
type AdaptiveWindow struct {
	// Delta is the cut confidence: smaller values cut more reluctantly.
	Delta float64
	// MaxBuckets bounds how many buckets of each size are kept before a
	// pairwise merge (ADWIN's M parameter).
	MaxBuckets int

	buckets []adwinBucket // oldest first
	total   adwinBucket
}

// NewAdaptiveWindow returns a window with the given cut confidence and
// the conventional per-level capacity of 5.
func NewAdaptiveWindow(delta float64) *AdaptiveWindow {
	return &AdaptiveWindow{Delta: delta, MaxBuckets: 5}
}

// Add feeds one observation and reports whether the window was cut — a
// cut is a detected distribution change, with the window already shrunk
// to the post-change suffix. Non-finite inputs are ignored.
func (w *AdaptiveWindow) Add(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	w.buckets = append(w.buckets, adwinBucket{sum: x, sumSq: x * x, count: 1})
	w.total.sum += x
	w.total.sumSq += x * x
	w.total.count++
	w.compress()
	return w.cut()
}

// compress merges the two oldest buckets of any size that exceeds
// MaxBuckets occupancy, cascading upward.
func (w *AdaptiveWindow) compress() {
	m := w.MaxBuckets
	if m < 2 {
		m = 2
	}
	for size := 1; ; size *= 2 {
		first, n := -1, 0
		for i, b := range w.buckets {
			if b.count == size {
				if first < 0 {
					first = i
				}
				n++
			}
		}
		if n <= m {
			if n == 0 {
				return
			}
			continue
		}
		// Merge the two oldest buckets of this size. Same-size buckets
		// are contiguous (sizes are non-increasing from old to new).
		a, b := w.buckets[first], w.buckets[first+1]
		merged := adwinBucket{sum: a.sum + b.sum, sumSq: a.sumSq + b.sumSq, count: a.count + b.count}
		w.buckets[first] = merged
		w.buckets = append(w.buckets[:first+1], w.buckets[first+2:]...)
	}
}

// cut drops old buckets while some old/new split fails the Hoeffding
// test, returning whether anything was dropped.
func (w *AdaptiveWindow) cut() bool {
	dropped := false
	for len(w.buckets) >= 2 && w.total.count >= 8 {
		// Scan split points from the old end: old = buckets[:i+1],
		// new = the rest.
		var old adwinBucket
		cutAt := -1
		for i := 0; i < len(w.buckets)-1; i++ {
			old.sum += w.buckets[i].sum
			old.sumSq += w.buckets[i].sumSq
			old.count += w.buckets[i].count
			n0, n1 := float64(old.count), float64(w.total.count-old.count)
			if n0 < 2 || n1 < 2 {
				continue
			}
			mu0 := old.sum / n0
			mu1 := (w.total.sum - old.sum) / n1
			if w.exceeds(mu0, mu1, n0, n1) {
				cutAt = i
				break
			}
		}
		if cutAt < 0 {
			return dropped
		}
		// Drop the oldest bucket and re-test: shrinking one bucket at a
		// time keeps the window's exponential structure intact.
		b := w.buckets[0]
		w.total.sum -= b.sum
		w.total.sumSq -= b.sumSq
		w.total.count -= b.count
		w.buckets = w.buckets[1:]
		dropped = true
	}
	return dropped
}

// exceeds is the variance-aware Hoeffding cut condition of ADWIN.
func (w *AdaptiveWindow) exceeds(mu0, mu1, n0, n1 float64) bool {
	n := float64(w.total.count)
	variance := w.Variance()
	if variance < 0 {
		variance = 0
	}
	// Union bound over the n possible split points.
	deltaPrime := w.Delta / n
	if deltaPrime <= 0 {
		deltaPrime = 1e-12
	}
	m := 1 / (1/n0 + 1/n1) // harmonic mean / 2
	lg := math.Log(2 / deltaPrime)
	eps := math.Sqrt(2/m*variance*lg) + 2/(3*m)*lg
	return math.Abs(mu0-mu1) > eps
}

// Len returns the current window length.
func (w *AdaptiveWindow) Len() int { return w.total.count }

// Mean returns the window mean (0 on an empty window).
func (w *AdaptiveWindow) Mean() float64 {
	if w.total.count == 0 {
		return 0
	}
	return w.total.sum / float64(w.total.count)
}

// Variance returns the window's population variance (0 for fewer than
// two observations).
func (w *AdaptiveWindow) Variance() float64 {
	n := float64(w.total.count)
	if n < 2 {
		return 0
	}
	mu := w.total.sum / n
	v := w.total.sumSq/n - mu*mu
	if v < 0 {
		return 0
	}
	return v
}

// Reset empties the window.
func (w *AdaptiveWindow) Reset() {
	w.buckets = nil
	w.total = adwinBucket{}
}

// madConsistency scales MAD to the standard deviation of a normal
// distribution.
const madConsistency = 1.4826

// MADWindow is a robust outlier screen over a short sliding window: an
// observation farther than K robust standard deviations
// (K · 1.4826 · MAD) from the window median is an outlier. A floored
// MAD keeps a constant-valued window from flagging everything.
type MADWindow struct {
	// K is the outlier threshold in robust standard deviations.
	K float64

	buf  []float64
	next int
	n    int
}

// NewMADWindow returns a screen over the last w observations.
func NewMADWindow(w int, k float64) *MADWindow {
	if w < 4 {
		w = 4
	}
	return &MADWindow{K: k, buf: make([]float64, w)}
}

// Outlier reports whether x lies beyond K robust standard deviations of
// the current window. With fewer than 4 observations there is no robust
// scale estimate and nothing is flagged.
func (m *MADWindow) Outlier(x float64) bool {
	if m.n < 4 || math.IsNaN(x) {
		return math.IsNaN(x) || math.IsInf(x, 0)
	}
	if math.IsInf(x, 0) {
		return true
	}
	window := append([]float64(nil), m.buf[:m.n]...)
	med := Median(window)
	devs := window
	for i, v := range devs {
		devs[i] = math.Abs(v - med)
	}
	mad := Median(devs) * madConsistency
	// Floor the scale so a near-constant window (MAD 0) only flags
	// genuinely distant points, relative to the median's magnitude.
	floor := 1e-9 + 1e-3*math.Abs(med)
	if mad < floor {
		mad = floor
	}
	return math.Abs(x-med) > m.K*mad
}

// Add inserts x into the window (oldest observation evicted when full).
// Non-finite inputs are dropped — they would poison the median.
func (m *MADWindow) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	m.buf[m.next] = x
	m.next = (m.next + 1) % len(m.buf)
	if m.n < len(m.buf) {
		m.n++
	}
}

// Len returns the number of buffered observations.
func (m *MADWindow) Len() int { return m.n }

// Reset empties the window.
func (m *MADWindow) Reset() { m.next, m.n = 0, 0 }
