package stats

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func TestPageHinkleyDetectsUpwardShift(t *testing.T) {
	ph := NewPageHinkley(0.05, 2.0, 8)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if ph.Add(1.0 + 0.05*r.NormFloat64()) {
			t.Fatalf("false alarm on stationary stream at %d", i)
		}
	}
	fired := -1
	for i := 0; i < 200; i++ {
		if ph.Add(2.0 + 0.05*r.NormFloat64()) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("upward mean shift never detected")
	}
	if fired > 40 {
		t.Fatalf("detection delay %d too long for a 1.0 shift", fired)
	}
}

func TestPageHinkleyDetectsDownwardShift(t *testing.T) {
	ph := NewPageHinkley(0.05, 2.0, 8)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		ph.Add(2.0 + 0.05*r.NormFloat64())
	}
	fired := false
	for i := 0; i < 200; i++ {
		if ph.Add(1.0 + 0.05*r.NormFloat64()) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("downward mean shift never detected")
	}
}

func TestPageHinkleyWarmupAndReset(t *testing.T) {
	ph := NewPageHinkley(0, 0.01, 10)
	// A violent shift inside the warmup must not fire.
	for i := 0; i < 9; i++ {
		x := 0.0
		if i > 4 {
			x = 100
		}
		if ph.Add(x) {
			t.Fatalf("fired at n=%d, inside MinObs=%d warmup", ph.N(), ph.MinObs)
		}
	}
	ph.Reset()
	if ph.N() != 0 || ph.Mean() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestPageHinkleyIgnoresNonFinite(t *testing.T) {
	ph := NewPageHinkley(0.005, 0.5, 4)
	for i := 0; i < 50; i++ {
		ph.Add(1)
	}
	n := ph.N()
	if ph.Add(math.NaN()) || ph.Add(math.Inf(1)) || ph.Add(math.Inf(-1)) {
		t.Fatal("non-finite input fired the detector")
	}
	if ph.N() != n {
		t.Fatal("non-finite input was counted")
	}
}

func TestAdaptiveWindowCutsOnShift(t *testing.T) {
	w := NewAdaptiveWindow(0.002)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		if w.Add(1.0+0.05*r.NormFloat64()) && i > 16 {
			t.Fatalf("false cut on stationary stream at %d (len %d)", i, w.Len())
		}
	}
	preLen := w.Len()
	cutAt := -1
	for i := 0; i < 300; i++ {
		if w.Add(3.0 + 0.05*r.NormFloat64()) {
			cutAt = i
			break
		}
	}
	if cutAt < 0 {
		t.Fatal("mean shift never cut the window")
	}
	if w.Len() >= preLen+cutAt {
		t.Fatalf("cut did not shrink the window: len %d after %d+%d adds", w.Len(), preLen, cutAt)
	}
	// The surviving window should reflect the new regime.
	for i := 0; i < 100; i++ {
		w.Add(3.0 + 0.05*r.NormFloat64())
	}
	if m := w.Mean(); math.Abs(m-3.0) > 0.5 {
		t.Fatalf("post-cut window mean %.3f still anchored to the old regime", m)
	}
}

func TestAdaptiveWindowBoundedMemory(t *testing.T) {
	w := NewAdaptiveWindow(0.002)
	for i := 0; i < 100000; i++ {
		w.Add(1)
	}
	// Exponential histogram: ~MaxBuckets buckets per power-of-two level.
	if n := len(w.buckets); n > w.MaxBuckets*20 {
		t.Fatalf("bucket count %d not logarithmic in window length %d", n, w.Len())
	}
	if w.Len() != 100000 {
		t.Fatalf("stationary stream should keep the whole window, got %d", w.Len())
	}
	if math.Abs(w.Mean()-1) > 1e-9 || w.Variance() > 1e-9 {
		t.Fatalf("constant stream: mean %.6f var %.6f", w.Mean(), w.Variance())
	}
}

func TestAdaptiveWindowReset(t *testing.T) {
	w := NewAdaptiveWindow(0.002)
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 7))
	}
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestMADWindowScreensSpikes(t *testing.T) {
	m := NewMADWindow(16, 6)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 16; i++ {
		m.Add(10 + 0.2*r.NormFloat64())
	}
	if m.Outlier(10.3) {
		t.Fatal("in-band value flagged")
	}
	if !m.Outlier(40) {
		t.Fatal("4x spike not flagged")
	}
	if !m.Outlier(math.Inf(1)) || !m.Outlier(math.NaN()) {
		t.Fatal("non-finite value not flagged")
	}
}

func TestMADWindowConstantStream(t *testing.T) {
	m := NewMADWindow(8, 6)
	for i := 0; i < 8; i++ {
		m.Add(5)
	}
	// MAD is zero; the floored scale must keep equal values in-band and
	// still flag a distant one.
	if m.Outlier(5) {
		t.Fatal("constant window flagged its own value")
	}
	if !m.Outlier(6) {
		t.Fatal("constant window missed a clear departure")
	}
}

func TestMADWindowWarmup(t *testing.T) {
	m := NewMADWindow(16, 6)
	m.Add(1)
	m.Add(100)
	if m.Outlier(50) {
		t.Fatal("flagged with no robust scale estimate")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("Reset left state behind")
	}
}

// FuzzDriftUpdate drives all three detectors with an arbitrary byte
// stream decoded as float64s. The contract: never panic, never corrupt
// the window invariants (non-negative lengths, finite aggregates on
// finite input), regardless of input order, magnitude, or non-finite
// values.
func FuzzDriftUpdate(f *testing.F) {
	seed := make([]byte, 0, 64)
	for _, v := range []float64{0, 1, -1, 1e300, -1e300, 1e-300, math.Inf(1), math.Inf(-1), math.NaN(), 3.14} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		ph := NewPageHinkley(0.05, 2.0, 8)
		aw := NewAdaptiveWindow(0.002)
		mad := NewMADWindow(16, 6)
		added := 0
		for len(data) >= 8 {
			x := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			mad.Outlier(x)
			mad.Add(x)
			ph.Add(x)
			aw.Add(x)
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				added++
			}
			if ph.N() != added {
				t.Fatalf("PageHinkley counted %d of %d finite inputs", ph.N(), added)
			}
			if aw.Len() < 0 || aw.Len() > added {
				t.Fatalf("AdaptiveWindow len %d after %d finite inputs", aw.Len(), added)
			}
			if mad.Len() < 0 || mad.Len() > 16 {
				t.Fatalf("MADWindow len %d beyond capacity", mad.Len())
			}
			if aw.Variance() < 0 {
				t.Fatalf("negative window variance %g", aw.Variance())
			}
		}
	})
}
