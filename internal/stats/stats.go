// Package stats provides the descriptive statistics the paper's evaluation
// relies on: means, medians, quantiles, standard deviations, five-number
// boxplot summaries (Figures 1, 4, 8), and per-iteration aggregation of
// repeated experiment runs (Figures 2, 3, 5, 6, 7).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum, or NaN for an empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or NaN for an empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the unbiased sample variance (n−1 denominator), or NaN
// for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation, or NaN for fewer than two
// samples.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics (type-7, the R default). It
// returns NaN for an empty input; the input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile, or NaN for an empty input.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// BoxPlot is a Tukey five-number summary with 1.5·IQR whiskers, the
// rendering unit of the paper's Figures 1, 4, and 8.
type BoxPlot struct {
	// Min and Max are the extreme observations.
	Min, Max float64
	// Q1, Median, Q3 are the quartiles.
	Q1, Median, Q3 float64
	// LowWhisker and HighWhisker are the most extreme observations within
	// 1.5·IQR of the box.
	LowWhisker, HighWhisker float64
	// Outliers are observations beyond the whiskers.
	Outliers []float64
	// N is the sample size.
	N int
}

// NewBoxPlot summarizes the samples. It returns a zero-valued summary with
// N == 0 for an empty input; the input is not modified.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	b := BoxPlot{
		Min:    s[0],
		Max:    s[len(s)-1],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		N:      len(s),
	}
	iqr := b.Q3 - b.Q1
	loFence, hiFence := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	b.LowWhisker, b.HighWhisker = b.Max, b.Min
	for _, x := range s {
		if x >= loFence && x < b.LowWhisker {
			b.LowWhisker = x
		}
		if x <= hiFence && x > b.HighWhisker {
			b.HighWhisker = x
		}
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
		}
	}
	return b
}

// Series is a collection of repeated runs of the same experiment: one
// []float64 per repetition, each indexed by tuning iteration. Runs may
// have different lengths; aggregation at iteration i uses every run that
// reached i.
type Series struct {
	runs [][]float64
}

// NewSeries creates an empty series collection.
func NewSeries() *Series { return &Series{} }

// Add appends one repetition's per-iteration values. The slice is copied.
func (s *Series) Add(run []float64) {
	r := make([]float64, len(run))
	copy(r, run)
	s.runs = append(s.runs, r)
}

// Runs returns the number of repetitions added.
func (s *Series) Runs() int { return len(s.runs) }

// MaxLen returns the longest repetition length.
func (s *Series) MaxLen() int {
	m := 0
	for _, r := range s.runs {
		if len(r) > m {
			m = len(r)
		}
	}
	return m
}

// At returns the values of all runs at iteration i (runs shorter than i+1
// are skipped).
func (s *Series) At(i int) []float64 {
	var xs []float64
	for _, r := range s.runs {
		if i < len(r) {
			xs = append(xs, r[i])
		}
	}
	return xs
}

// Aggregate maps every iteration through f (e.g. Median or Mean),
// producing the per-iteration curve of the paper's convergence figures.
// Iterations beyond limit are dropped when limit > 0.
func (s *Series) Aggregate(f func([]float64) float64, limit int) []float64 {
	n := s.MaxLen()
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = f(s.At(i))
	}
	return out
}

// MedianCurve is Aggregate(Median): the paper's Figures 2 and 6.
func (s *Series) MedianCurve(limit int) []float64 { return s.Aggregate(Median, limit) }

// MeanCurve is Aggregate(Mean): the paper's Figures 3, 5, and 7.
func (s *Series) MeanCurve(limit int) []float64 { return s.Aggregate(Mean, limit) }

// CountMatrix collects per-repetition selection counts for a set of
// labeled categories — the data shape behind the choice-frequency
// histograms (Figures 4 and 8): for each category, one count per
// repetition, summarized as a boxplot.
type CountMatrix struct {
	labels []string
	counts [][]float64 // [category][repetition]
}

// NewCountMatrix creates a count matrix over the given category labels.
func NewCountMatrix(labels []string) *CountMatrix {
	ls := make([]string, len(labels))
	copy(ls, labels)
	cm := &CountMatrix{labels: ls, counts: make([][]float64, len(labels))}
	return cm
}

// AddRun records one repetition's per-category counts.
func (c *CountMatrix) AddRun(counts []int) {
	if len(counts) != len(c.labels) {
		panic("stats: count vector arity mismatch")
	}
	for i, n := range counts {
		c.counts[i] = append(c.counts[i], float64(n))
	}
}

// Labels returns the category labels.
func (c *CountMatrix) Labels() []string {
	ls := make([]string, len(c.labels))
	copy(ls, c.labels)
	return ls
}

// Box returns the boxplot of category i's counts across repetitions.
func (c *CountMatrix) Box(i int) BoxPlot { return NewBoxPlot(c.counts[i]) }

// MeanOf returns the mean count of category i across repetitions.
func (c *CountMatrix) MeanOf(i int) float64 { return Mean(c.counts[i]) }
