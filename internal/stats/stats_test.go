package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Errorf("Mean = %g", Mean([]float64{1, 2, 3, 4}))
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if Mean([]float64{7}) != 7 {
		t.Error("Mean of singleton")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	if !almost(Variance(xs), 32.0/7.0) {
		t.Errorf("Variance = %g, want %g", Variance(xs), 32.0/7.0)
	}
	if !almost(StdDev(xs), math.Sqrt(32.0/7.0)) {
		t.Errorf("StdDev = %g", StdDev(xs))
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Out-of-range q clamps.
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 5 {
		t.Error("quantile clamping failed")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, math.NaN())) {
		t.Error("NaN handling failed")
	}
	if Quantile([]float64{9}, 0.73) != 9 {
		t.Error("singleton quantile")
	}
	// Input must not be reordered.
	orig := []float64{5, 1, 3}
	Quantile(orig, 0.5)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if Median([]float64{1, 3, 2}) != 2 {
		t.Error("odd median")
	}
	if !almost(Median([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("even median")
	}
}

func TestBoxPlotBasic(t *testing.T) {
	b := NewBoxPlot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if b.N != 9 || b.Min != 1 || b.Max != 9 || b.Median != 5 {
		t.Errorf("boxplot basics: %+v", b)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("quartiles: Q1=%g Q3=%g", b.Q1, b.Q3)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("no outliers expected, got %v", b.Outliers)
	}
	if b.LowWhisker != 1 || b.HighWhisker != 9 {
		t.Errorf("whiskers: %g/%g", b.LowWhisker, b.HighWhisker)
	}
}

func TestBoxPlotOutliers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := NewBoxPlot(xs)
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", b.Outliers)
	}
	if b.HighWhisker == 100 {
		t.Error("whisker should exclude the outlier")
	}
	if b.Max != 100 {
		t.Error("Max should include the outlier")
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	b := NewBoxPlot(nil)
	if b.N != 0 {
		t.Errorf("empty boxplot N = %d", b.N)
	}
}

// Property: the five numbers are ordered and whiskers bracket the box for
// arbitrary positive data.
func TestBoxPlotOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		b := NewBoxPlot(xs)
		// Note: in degenerate skewed samples a whisker may land inside the
		// box (e.g. [0,10,10,10] has Q1=7.5 but low whisker 10), so the
		// property asserts only the universally valid orderings.
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 &&
			b.Q3 <= b.Max && b.Min <= b.LowWhisker &&
			b.LowWhisker <= b.HighWhisker && b.HighWhisker <= b.Max &&
			b.N == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 31)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	f := func(q1, q2 float64) bool {
		a, b := math.Abs(math.Mod(q1, 1)), math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeriesAggregation(t *testing.T) {
	s := NewSeries()
	s.Add([]float64{10, 20, 30})
	s.Add([]float64{20, 40, 60})
	s.Add([]float64{30, 60}) // shorter run
	if s.Runs() != 3 || s.MaxLen() != 3 {
		t.Fatalf("Runs/MaxLen = %d/%d", s.Runs(), s.MaxLen())
	}
	med := s.MedianCurve(0)
	if len(med) != 3 {
		t.Fatalf("median curve length %d", len(med))
	}
	if med[0] != 20 || med[1] != 40 {
		t.Errorf("median curve %v", med)
	}
	// Iteration 2 only has two runs: median of {30, 60} = 45.
	if med[2] != 45 {
		t.Errorf("median at truncated iteration = %g, want 45", med[2])
	}
	mean := s.MeanCurve(2)
	if len(mean) != 2 || mean[0] != 20 || !almost(mean[1], 40) {
		t.Errorf("mean curve %v", mean)
	}
}

func TestSeriesAddCopies(t *testing.T) {
	s := NewSeries()
	run := []float64{1, 2}
	s.Add(run)
	run[0] = 99
	if s.At(0)[0] != 1 {
		t.Error("Add did not copy the run")
	}
}

func TestCountMatrix(t *testing.T) {
	cm := NewCountMatrix([]string{"a", "b"})
	cm.AddRun([]int{10, 190})
	cm.AddRun([]int{20, 180})
	cm.AddRun([]int{30, 170})
	if got := cm.Labels(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("labels %v", got)
	}
	if m := cm.MeanOf(0); m != 20 {
		t.Errorf("MeanOf(0) = %g, want 20", m)
	}
	b := cm.Box(1)
	if b.Median != 180 || b.N != 3 {
		t.Errorf("Box(1) = %+v", b)
	}
}

func TestCountMatrixArityPanics(t *testing.T) {
	cm := NewCountMatrix([]string{"a", "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	cm.AddRun([]int{1})
}

// Property: for any data, Median equals the middle order statistic
// definition.
func TestMedianAgainstSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		s := make([]float64, n)
		copy(s, xs)
		sort.Float64s(s)
		var want float64
		if n%2 == 1 {
			want = s[n/2]
		} else {
			want = (s[n/2-1] + s[n/2]) / 2
		}
		return almost(Median(xs), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
