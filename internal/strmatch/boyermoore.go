package strmatch

// BoyerMoore is the classic Boyer-Moore algorithm with both the
// bad-character and good-suffix rules. It scans the window right-to-left
// and skips ahead by the larger of the two rules' shifts.
type BoyerMoore struct {
	pattern []byte
	badChar [256]int
	goodSfx []int
}

// NewBoyerMoore creates an unprepared Boyer-Moore matcher.
func NewBoyerMoore() *BoyerMoore { return &BoyerMoore{} }

// Name returns "Boyer-Moore".
func (b *BoyerMoore) Name() string { return "Boyer-Moore" }

// Precompute builds the bad-character and good-suffix tables.
func (b *BoyerMoore) Precompute(pattern []byte) {
	p := checkPattern(pattern)
	b.pattern = p
	m := len(p)

	// Bad character: rightmost occurrence of each byte.
	for i := range b.badChar {
		b.badChar[i] = -1
	}
	for i, c := range p {
		b.badChar[c] = i
	}

	// Good suffix via the border/suffix construction (Crochemore/Lecroq).
	suff := make([]int, m)
	suff[m-1] = m
	g := m - 1
	f := 0
	for i := m - 2; i >= 0; i-- {
		if i > g && suff[i+m-1-f] < i-g {
			suff[i] = suff[i+m-1-f]
		} else {
			if i < g {
				g = i
			}
			f = i
			for g >= 0 && p[g] == p[g+m-1-f] {
				g--
			}
			suff[i] = f - g
		}
	}
	gs := make([]int, m)
	for i := range gs {
		gs[i] = m
	}
	j := 0
	for i := m - 1; i >= 0; i-- {
		if suff[i] == i+1 {
			for ; j < m-1-i; j++ {
				if gs[j] == m {
					gs[j] = m - 1 - i
				}
			}
		}
	}
	for i := 0; i <= m-2; i++ {
		gs[m-1-suff[i]] = m - 1 - i
	}
	b.goodSfx = gs
}

// Search returns all match positions.
func (b *BoyerMoore) Search(text []byte) []int {
	p, m, n := b.pattern, len(b.pattern), len(text)
	var out []int
	if m > n {
		return nil
	}
	j := 0
	for j <= n-m {
		i := m - 1
		for i >= 0 && p[i] == text[j+i] {
			i--
		}
		if i < 0 {
			out = append(out, j)
			j += b.goodSfx[0]
		} else {
			gsShift := b.goodSfx[i]
			bcShift := i - b.badChar[text[j+i]]
			if gsShift > bcShift {
				j += gsShift
			} else {
				j += bcShift
			}
		}
	}
	return out
}

// KMP is the Knuth-Morris-Pratt algorithm: a linear left-to-right scan
// driven by the pattern's failure function. It never skips text bytes,
// which is why the paper's Figure 1 shows it among the slowest on natural
// language — but its worst case is unbeatable.
type KMP struct {
	pattern []byte
	fail    []int
}

// NewKMP creates an unprepared Knuth-Morris-Pratt matcher.
func NewKMP() *KMP { return &KMP{} }

// Name returns "Knuth-Morris-Pratt".
func (k *KMP) Name() string { return "Knuth-Morris-Pratt" }

// Precompute builds the failure function.
func (k *KMP) Precompute(pattern []byte) {
	p := checkPattern(pattern)
	k.pattern = p
	m := len(p)
	fail := make([]int, m+1)
	fail[0] = -1
	cand := -1
	for i := 1; i <= m; i++ {
		for cand >= 0 && p[cand] != p[i-1] {
			cand = fail[cand]
		}
		cand++
		fail[i] = cand
	}
	k.fail = fail
}

// Search returns all match positions.
func (k *KMP) Search(text []byte) []int {
	p, m := k.pattern, len(k.pattern)
	var out []int
	q := 0
	for i := 0; i < len(text); i++ {
		for q >= 0 && (q == m || p[q] != text[i]) {
			q = k.fail[q]
		}
		q++
		if q == m {
			out = append(out, i-m+1)
		}
	}
	return out
}
