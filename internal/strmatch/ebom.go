package strmatch

// EBOM is the Extended Backward Oracle Matching algorithm (Faro & Lecroq):
// a factor oracle of the reversed pattern is read right-to-left inside the
// current window; when the oracle dies, everything scanned so far cannot
// be a pattern factor and the window skips past it. The "extended" part is
// a two-byte transition table that jumps over the first two window bytes
// in one lookup, which is where most windows die on natural-language text.
type EBOM struct {
	pattern []byte
	// trans[state*256 + c] is the oracle transition, -1 when undefined.
	// State 0 is the oracle's initial state; there are m+1 states.
	trans []int32
	// two[c1<<8|c2] is the state after reading window bytes
	// (…, c2, c1) — i.e. last byte c1 then c2 — from the initial state,
	// -1 when the oracle dies within those two bytes.
	two []int32
}

// NewEBOM creates an unprepared EBOM matcher.
func NewEBOM() *EBOM { return &EBOM{} }

// Name returns "EBOM".
func (e *EBOM) Name() string { return "EBOM" }

// Precompute builds the factor oracle of the reversed pattern and the
// two-byte fast-entry table.
func (e *EBOM) Precompute(pattern []byte) {
	p := checkPattern(pattern)
	e.pattern = p
	m := len(p)

	// Reversed pattern.
	rev := make([]byte, m)
	for i, c := range p {
		rev[m-1-i] = c
	}

	// Factor oracle construction (Allauzen, Crochemore, Raffinot).
	states := m + 1
	if cap(e.trans) < states*256 {
		e.trans = make([]int32, states*256)
	} else {
		e.trans = e.trans[:states*256]
	}
	for i := range e.trans {
		e.trans[i] = -1
	}
	supply := make([]int32, states)
	supply[0] = -1
	for i := 1; i <= m; i++ {
		c := rev[i-1]
		e.trans[(i-1)*256+int(c)] = int32(i)
		down := supply[i-1]
		for down > -1 && e.trans[int(down)*256+int(c)] == -1 {
			e.trans[int(down)*256+int(c)] = int32(i)
			down = supply[down]
		}
		if down == -1 {
			supply[i] = 0
		} else {
			supply[i] = e.trans[int(down)*256+int(c)]
		}
	}

	// Two-byte entry table: state after reading c1 then c2.
	if m >= 2 {
		if cap(e.two) < 1<<16 {
			e.two = make([]int32, 1<<16)
		} else {
			e.two = e.two[:1<<16]
		}
		for c1 := 0; c1 < 256; c1++ {
			s1 := e.trans[0*256+c1]
			for c2 := 0; c2 < 256; c2++ {
				idx := c1<<8 | c2
				if s1 == -1 {
					e.two[idx] = -1
				} else {
					e.two[idx] = e.trans[int(s1)*256+c2]
				}
			}
		}
	}
}

// Search returns all match positions.
func (e *EBOM) Search(text []byte) []int {
	p, m, n := e.pattern, len(e.pattern), len(text)
	if m > n {
		return nil
	}
	var out []int
	if m == 1 {
		c := p[0]
		for i := 0; i < n; i++ {
			if text[i] == c {
				out = append(out, i)
			}
		}
		return out
	}
	j := 0
	for j <= n-m {
		// Fast two-byte entry on the window's last two bytes.
		state := e.two[int(text[j+m-1])<<8|int(text[j+m-2])]
		i := m - 3
		for state != -1 && i >= 0 {
			state = e.trans[int(state)*256+int(text[j+i])]
			i--
		}
		if state != -1 {
			// The whole window was read by the oracle of the reversed
			// pattern, which accepts exactly one string of length m: the
			// pattern itself.
			out = append(out, j)
			j++
		} else {
			// The suffix text[j+i+2 .. j+m-1] plus the failing byte is not
			// a factor; no match can cover it.
			j += i + 2
		}
	}
	return out
}
