package strmatch

// FSBNDM is the Forward Simplified BNDM algorithm (Faro & Lecroq): a
// bit-parallel backward scan over the nondeterministic suffix automaton,
// entered through a forward-looking two-byte state so that most windows
// are discarded with two loads and one AND. Patterns must fit the machine
// word minus the forward bit (m ≤ 63 here); longer patterns filter on a
// 63-byte prefix and verify the rest.
type FSBNDM struct {
	pattern []byte
	masks   [256]uint64
	flen    int // filter length: min(m, 63)
}

// NewFSBNDM creates an unprepared FSBNDM matcher.
func NewFSBNDM() *FSBNDM { return &FSBNDM{} }

// Name returns "FSBNDM".
func (f *FSBNDM) Name() string { return "FSBNDM" }

// Precompute builds the (m+1)-bit masks: bit 0 is always set (the forward
// bit), bit m−i marks pattern byte i.
func (f *FSBNDM) Precompute(pattern []byte) {
	p := checkPattern(pattern)
	f.pattern = p
	f.flen = len(p)
	if f.flen > 63 {
		f.flen = 63
	}
	for i := range f.masks {
		f.masks[i] = 1
	}
	for i := 0; i < f.flen; i++ {
		f.masks[p[i]] |= 1 << uint(f.flen-i)
	}
}

// Search returns all match positions.
func (f *FSBNDM) Search(text []byte) []int {
	p, n := f.pattern, len(text)
	m := f.flen
	full := len(p)
	if full > n {
		return nil
	}
	var out []int
	report := func(pos int) {
		if full == m {
			out = append(out, pos)
			return
		}
		// Long pattern: the first m bytes matched; verify the tail.
		if pos+full <= n && matchAt(p[m:], text, pos+m) {
			out = append(out, pos)
		}
	}
	// Window ends at j; the main loop looks one byte ahead, so the last
	// text byte is handled separately.
	if matchAt(p[:m], text, 0) {
		report(0)
	}
	j := m
	for j < n-1 {
		d := (f.masks[text[j+1]] << 1) & f.masks[text[j]]
		if d != 0 {
			pos := j
			for {
				d = (d << 1) & f.masks[text[j-1]]
				if d == 0 {
					break
				}
				j--
			}
			j += m - 1
			if j == pos {
				report(j - m + 1)
				j++
			}
		} else {
			j += m
		}
	}
	// Final window, ending exactly at the last byte: the main loop's
	// lookahead never reaches it (and may even have jumped past it), so it
	// is always checked directly. n−m == 0 was already checked up front.
	if n-m > 0 && matchAt(p[:m], text, n-m) {
		report(n - m)
	}
	return out
}
