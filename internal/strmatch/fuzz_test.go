package strmatch

import (
	"bytes"
	"testing"
)

// FuzzMatchersAgainstBrute cross-validates every matcher against the
// brute-force oracle on fuzzer-chosen pattern/text pairs. Run with
// `go test -fuzz FuzzMatchersAgainstBrute ./internal/strmatch` to explore;
// the seed corpus runs as a regular test.
func FuzzMatchersAgainstBrute(f *testing.F) {
	f.Add([]byte("ab"), []byte("abababab"))
	f.Add([]byte("aaa"), []byte("aaaaaaa"))
	f.Add([]byte("xyz"), []byte("no match"))
	f.Add([]byte("the spirit"), []byte("the spirit to a great and high mountain"))
	f.Add([]byte{0, 1, 0}, []byte{0, 1, 0, 1, 0, 1, 0})
	f.Add(bytes.Repeat([]byte("q"), 70), bytes.Repeat([]byte("q"), 200)) // long pattern fallbacks
	f.Fuzz(func(t *testing.T, pattern, text []byte) {
		if len(pattern) == 0 || len(pattern) > 300 || len(text) > 1<<16 {
			t.Skip()
		}
		want := bruteSearch(pattern, text)
		for _, m := range All() {
			m.Precompute(pattern)
			got := m.Search(text)
			if !positionsEqual(got, want) {
				t.Fatalf("%s: pattern %q: got %v, want %v", m.Name(), pattern, trim(got), trim(want))
			}
		}
	})
}
