// Package strmatch implements the seven parallel exact string matching
// algorithms of the paper's first case study — Boyer-Moore, EBOM, FSBNDM,
// Hash3, Knuth-Morris-Pratt, ShiftOr, and SSEF — plus the pattern-length
// Hybrid heuristic matcher, following Pfaffe et al., "Parallel String
// Matching" (2016).
//
// All algorithms follow the same two-phase pattern: a precomputation on the
// pattern, then an iterated skip-ahead heuristic over the text that
// discards infeasible chunks, checking only the remaining candidates.
// Parallelization partitions the input text; each partition is processed by
// one goroutine (one thread in the paper).
//
// The original SSEF and the bit-parallel inner loops use SSE intrinsics;
// Go has no stdlib SIMD, so this package substitutes 64-bit word-level
// parallelism (uint64 fingerprints and state vectors), which preserves the
// filter-then-verify character of the algorithms. See DESIGN.md for the
// substitution table.
package strmatch

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// A Matcher is one exact string matching algorithm. Precompute runs the
// pattern preprocessing; Search reports all (possibly overlapping) match
// positions in ascending order. After Precompute, Search is safe for
// concurrent use from multiple goroutines — that property underlies the
// text-partitioned parallel driver.
type Matcher interface {
	// Name identifies the algorithm as labeled in the paper's figures.
	Name() string
	// Precompute performs the pattern preprocessing. It panics when the
	// pattern is empty: matching the empty pattern is undefined here.
	Precompute(pattern []byte)
	// Search returns all match positions in text, ascending.
	Search(text []byte) []int
}

// checkPattern enforces the shared precondition.
func checkPattern(p []byte) []byte {
	if len(p) == 0 {
		panic("strmatch: empty pattern")
	}
	c := make([]byte, len(p))
	copy(c, p)
	return c
}

// bruteSearch is the obviously correct reference implementation used by
// the long-pattern fallbacks and the test oracle.
func bruteSearch(pattern, text []byte) []int {
	var out []int
	for i := 0; i+len(pattern) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pattern)], pattern) {
			out = append(out, i)
		}
	}
	return out
}

// New returns a fresh matcher by paper name. Recognized names (case
// sensitive): Boyer-Moore, EBOM, FSBNDM, Hash3, Knuth-Morris-Pratt,
// ShiftOr, SSEF, Hybrid.
func New(name string) (Matcher, error) {
	switch name {
	case "Boyer-Moore":
		return NewBoyerMoore(), nil
	case "EBOM":
		return NewEBOM(), nil
	case "FSBNDM":
		return NewFSBNDM(), nil
	case "Hash3":
		return NewHash3(), nil
	case "Knuth-Morris-Pratt":
		return NewKMP(), nil
	case "ShiftOr":
		return NewShiftOr(), nil
	case "SSEF":
		return NewSSEF(), nil
	case "Hybrid":
		return NewHybrid(), nil
	default:
		return nil, fmt.Errorf("strmatch: unknown matcher %q", name)
	}
}

// Names lists the eight matchers in the paper's Figure 1/4 order.
func Names() []string {
	return []string{
		"Boyer-Moore", "EBOM", "FSBNDM", "Hash3",
		"Hybrid", "Knuth-Morris-Pratt", "ShiftOr", "SSEF",
	}
}

// All returns fresh instances of all eight matchers in Names() order.
func All() []Matcher {
	ms := make([]Matcher, 0, 8)
	for _, n := range Names() {
		m, err := New(n)
		if err != nil {
			panic(err) // unreachable: Names and New agree
		}
		ms = append(ms, m)
	}
	return ms
}

// ParallelSearch partitions the text into workers chunks, overlapping each
// by len(pattern)−1 bytes, searches the chunks concurrently with the
// (already precomputed) matcher, and merges the sorted results. Matches
// are attributed to the chunk in which they start, so each is reported
// exactly once. workers < 1 is treated as 1.
func ParallelSearch(m Matcher, text []byte, pattern []byte, workers int) []int {
	if workers < 1 {
		workers = 1
	}
	n, pl := len(text), len(pattern)
	if pl == 0 || pl > n {
		return nil
	}
	if workers > n/pl {
		// Never more workers than could possibly hold a match each.
		workers = n / pl
		if workers < 1 {
			workers = 1
		}
	}
	if workers == 1 {
		return m.Search(text)
	}
	chunk := n / workers
	results := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if w == workers-1 {
			end = n
		}
		// Extend by the overlap so matches straddling the boundary are
		// seen, but only keep those starting before end.
		ext := end + pl - 1
		if ext > n {
			ext = n
		}
		wg.Add(1)
		go func(w, start, end, ext int) {
			defer wg.Done()
			local := m.Search(text[start:ext])
			var keep []int
			for _, pos := range local {
				abs := start + pos
				if abs < end {
					keep = append(keep, abs)
				}
			}
			results[w] = keep
		}(w, start, end, ext)
	}
	wg.Wait()
	var out []int
	for _, r := range results {
		out = append(out, r...)
	}
	sort.Ints(out) // chunks are ordered, but keep the guarantee explicit
	return out
}

// Run precomputes the pattern and performs a parallel search; this is the
// complete measured operation of the paper's tuning loop ("any
// precomputation is part of the algorithm's runtime").
func Run(m Matcher, pattern, text []byte, workers int) []int {
	m.Precompute(pattern)
	return ParallelSearch(m, text, pattern, workers)
}
