package strmatch

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/corpus"
)

func positionsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkAgainstBrute(t *testing.T, m Matcher, pattern, text []byte) {
	t.Helper()
	want := bruteSearch(pattern, text)
	m.Precompute(pattern)
	got := m.Search(text)
	if !positionsEqual(got, want) {
		t.Errorf("%s: pattern %q text[%d]: got %v, want %v",
			m.Name(), pattern, len(text), trim(got), trim(want))
	}
}

func trim(xs []int) []int {
	if len(xs) > 20 {
		return xs[:20]
	}
	return xs
}

func TestAllMatchersOnSimpleCases(t *testing.T) {
	cases := []struct{ pattern, text string }{
		{"abc", "abcabcabc"},
		{"aaa", "aaaaaa"}, // overlapping matches
		{"a", "banana"},
		{"xyz", "no match here"},
		{"hello", "hello"},                     // pattern == text
		{"needle", "needle in the haystack"},   // match at start
		{"haystack", "needle in the haystack"}, // match at end
		{"ab", "ababababab"},
		{"the spirit to a great and high mountain", "x" + corpus.QueryPhrase + "y" + corpus.QueryPhrase},
		{"mississippi", "mississippimississippi"},
		{"aab", "aaaaaaaaab"},
	}
	for _, m := range All() {
		for _, c := range cases {
			checkAgainstBrute(t, m, []byte(c.pattern), []byte(c.text))
		}
	}
}

func TestAllMatchersPatternLongerThanText(t *testing.T) {
	for _, m := range All() {
		m.Precompute([]byte("longpatternhere"))
		if got := m.Search([]byte("short")); got != nil {
			t.Errorf("%s: pattern > text returned %v", m.Name(), got)
		}
	}
}

func TestAllMatchersEmptyPatternPanics(t *testing.T) {
	for _, m := range All() {
		m := m
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: empty pattern did not panic", m.Name())
				}
			}()
			m.Precompute(nil)
		}()
	}
}

// Property: every matcher agrees with the brute-force oracle on random
// small-alphabet texts (small alphabets maximize overlaps and collisions).
func TestAllMatchersRandomizedCrossValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	alphabets := []string{"ab", "abcd", "abcdefghijklmnopqrstuvwxyz "}
	for trial := 0; trial < 120; trial++ {
		alpha := alphabets[trial%len(alphabets)]
		n := 50 + r.Intn(500)
		text := make([]byte, n)
		for i := range text {
			text[i] = alpha[r.Intn(len(alpha))]
		}
		plen := 1 + r.Intn(40)
		var pattern []byte
		if r.Intn(2) == 0 && plen < n {
			// Sample the pattern from the text to guarantee matches.
			start := r.Intn(n - plen)
			pattern = append(pattern, text[start:start+plen]...)
		} else {
			pattern = make([]byte, plen)
			for i := range pattern {
				pattern[i] = alpha[r.Intn(len(alpha))]
			}
		}
		for _, m := range All() {
			checkAgainstBrute(t, m, pattern, text)
		}
	}
}

// Long patterns exercise the ShiftOr (>64) and FSBNDM (>63) filter
// fallbacks.
func TestLongPatternFallbacks(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	text := make([]byte, 4000)
	for i := range text {
		text[i] = byte('a' + r.Intn(3))
	}
	for _, plen := range []int{63, 64, 65, 100, 150} {
		start := 1000
		pattern := append([]byte(nil), text[start:start+plen]...)
		for _, m := range All() {
			checkAgainstBrute(t, m, pattern, text)
		}
	}
}

func TestMatchersOnBibleCorpus(t *testing.T) {
	text := corpus.Bible(1<<20, 5)
	pattern := []byte(corpus.QueryPhrase)
	want := bruteSearch(pattern, text)
	if len(want) < 2 {
		t.Fatalf("corpus should contain the phrase at least twice, found %d", len(want))
	}
	for _, m := range All() {
		m.Precompute(pattern)
		if got := m.Search(text); !positionsEqual(got, want) {
			t.Errorf("%s found %d matches, want %d", m.Name(), len(got), len(want))
		}
	}
}

func TestMatchersOnDNACorpus(t *testing.T) {
	text := corpus.DNA(1<<19, 8)
	pattern := append([]byte(nil), text[12345:12345+24]...)
	want := bruteSearch(pattern, text)
	for _, m := range All() {
		m.Precompute(pattern)
		if got := m.Search(text); !positionsEqual(got, want) {
			t.Errorf("%s on DNA: got %d matches, want %d", m.Name(), len(got), len(want))
		}
	}
}

func TestParallelSearchMatchesSequential(t *testing.T) {
	text := corpus.Bible(1<<20, 17)
	pattern := []byte(corpus.QueryPhrase)
	want := bruteSearch(pattern, text)
	for _, m := range All() {
		m.Precompute(pattern)
		for _, workers := range []int{1, 2, 3, 4, 8, 16} {
			got := ParallelSearch(m, text, pattern, workers)
			if !positionsEqual(got, want) {
				t.Errorf("%s workers=%d: got %d matches, want %d",
					m.Name(), workers, len(got), len(want))
			}
		}
	}
}

func TestParallelSearchBoundaryMatches(t *testing.T) {
	// Matches exactly straddling chunk boundaries must be found once.
	pattern := []byte("boundary")
	text := bytes.Repeat([]byte("x"), 1000)
	// With 4 workers chunk = 250; plant across the 250 and 500 boundaries.
	copy(text[246:], pattern)
	copy(text[497:], pattern)
	want := bruteSearch(pattern, text)
	if len(want) != 2 {
		t.Fatalf("setup wrong: %d matches", len(want))
	}
	for _, m := range All() {
		m.Precompute(pattern)
		got := ParallelSearch(m, text, pattern, 4)
		if !positionsEqual(got, want) {
			t.Errorf("%s: boundary matches %v, want %v", m.Name(), got, want)
		}
	}
}

func TestParallelSearchDegenerateWorkerCounts(t *testing.T) {
	pattern := []byte("abc")
	text := []byte("abcabc")
	m := NewKMP()
	m.Precompute(pattern)
	for _, workers := range []int{-1, 0, 1, 100} {
		got := ParallelSearch(m, text, pattern, workers)
		if !positionsEqual(got, []int{0, 3}) {
			t.Errorf("workers=%d: got %v", workers, got)
		}
	}
	if got := ParallelSearch(m, []byte("ab"), pattern, 2); got != nil {
		t.Errorf("pattern > text with workers: %v", got)
	}
}

func TestRunCombinesPrecomputeAndSearch(t *testing.T) {
	text := []byte("abc abc abc")
	got := Run(NewBoyerMoore(), []byte("abc"), text, 2)
	if !positionsEqual(got, []int{0, 4, 8}) {
		t.Errorf("Run = %v", got)
	}
}

func TestNewAndNames(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("Names() has %d entries", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		m, err := New(n)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		if m.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, m.Name())
		}
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
	}
	if _, err := New("Rabin-Karp"); err == nil {
		t.Error("unknown matcher did not error")
	}
}

func TestHybridDelegation(t *testing.T) {
	h := NewHybrid()
	cases := []struct {
		plen int
		want string
	}{
		{1, "ShiftOr"}, {8, "ShiftOr"},
		{9, "EBOM"}, {14, "EBOM"},
		{15, "SSEF"}, {37, "SSEF"}, {100, "SSEF"},
	}
	for _, c := range cases {
		h.Precompute(bytes.Repeat([]byte("ab"), (c.plen+1)/2)[:c.plen])
		if got := h.Delegate(); got != c.want {
			t.Errorf("pattern length %d delegates to %q, want %q", c.plen, got, c.want)
		}
	}
	if NewHybrid().Delegate() != "" {
		t.Error("Delegate before Precompute should be empty")
	}
}

func TestHybridSearchBeforePrecomputePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHybrid().Search([]byte("x"))
}

func TestSSEFShortPatternFallback(t *testing.T) {
	s := NewSSEF()
	s.Precompute([]byte("ab"))
	got := s.Search([]byte("ababab"))
	if !positionsEqual(got, []int{0, 2, 4}) {
		t.Errorf("short-pattern fallback: %v", got)
	}
}

func TestFingerprint8(t *testing.T) {
	block := []byte{0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x01}
	// Bit 0 of byte j lands at result bit 7−j: 0b10101001 = 0xA9.
	if got := fingerprint8(block, 0); got != 0xA9 {
		t.Errorf("fingerprint8 = %#x, want 0xA9", got)
	}
	block2 := []byte{0x80, 0, 0, 0, 0, 0, 0, 0}
	if got := fingerprint8(block2, 7); got != 0x80 {
		t.Errorf("fingerprint8 bit7 = %#x, want 0x80", got)
	}
}

func TestPrecomputeReuse(t *testing.T) {
	// Matchers must be reusable: a second Precompute fully replaces the
	// first pattern's state.
	for _, m := range All() {
		m.Precompute([]byte("first-pattern"))
		_ = m.Search([]byte("text with first-pattern inside"))
		checkAgainstBrute(t, m, []byte("zq"), []byte("zqzq first zq"))
	}
}

func TestSearchIsReadOnlyAfterPrecompute(t *testing.T) {
	// Concurrent Search calls over one precomputed matcher must agree —
	// the contract ParallelSearch relies on. Run with -race to verify.
	text := corpus.Bible(1<<18, 2)
	pattern := []byte(corpus.QueryPhrase)
	want := bruteSearch(pattern, text)
	for _, m := range All() {
		m.Precompute(pattern)
		done := make(chan []int, 4)
		for i := 0; i < 4; i++ {
			go func() { done <- m.Search(text) }()
		}
		for i := 0; i < 4; i++ {
			if got := <-done; !positionsEqual(got, want) {
				t.Errorf("%s: concurrent search mismatch", m.Name())
			}
		}
	}
}

func TestBruteSearchOracle(t *testing.T) {
	got := bruteSearch([]byte("aa"), []byte("aaaa"))
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("bruteSearch oracle broken: %v", got)
	}
}
