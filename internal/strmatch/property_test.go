package strmatch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property (testing/quick): every matcher agrees with the brute-force
// oracle for arbitrary seeds driving random text/pattern generation,
// including patterns sampled from the text (guaranteed matches), binary
// alphabets (maximum overlap), and lengths crossing every fast-path
// boundary (8, 14, 15, 63, 64).
func TestMatchersOracleQuickProperty(t *testing.T) {
	matchers := All()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alphaSize := 2 + r.Intn(26)
		n := 30 + r.Intn(800)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + r.Intn(alphaSize))
		}
		// Pattern lengths biased toward the implementation boundaries.
		boundaries := []int{1, 2, 7, 8, 9, 14, 15, 16, 37, 62, 63, 64, 65}
		plen := boundaries[r.Intn(len(boundaries))]
		if plen >= n {
			plen = 1 + r.Intn(n/2)
		}
		var pattern []byte
		if r.Intn(2) == 0 {
			start := r.Intn(n - plen + 1)
			pattern = append(pattern, text[start:start+plen]...)
		} else {
			pattern = make([]byte, plen)
			for i := range pattern {
				pattern[i] = byte('a' + r.Intn(alphaSize))
			}
		}
		want := bruteSearch(pattern, text)
		m := matchers[r.Intn(len(matchers))]
		m.Precompute(pattern)
		got := m.Search(text)
		if !positionsEqual(got, want) {
			t.Logf("seed %d: %s plen=%d alpha=%d: got %d matches, want %d",
				seed, m.Name(), plen, alphaSize, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ParallelSearch with a random worker count equals the
// sequential result.
func TestParallelSearchEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(2000)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + r.Intn(3))
		}
		plen := 1 + r.Intn(20)
		start := r.Intn(n - plen)
		pattern := append([]byte(nil), text[start:start+plen]...)
		m := All()[r.Intn(8)]
		m.Precompute(pattern)
		want := m.Search(text)
		workers := 1 + r.Intn(9)
		got := ParallelSearch(m, text, pattern, workers)
		return positionsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: all reported positions are genuine matches and are strictly
// increasing (sorted, no duplicates).
func TestPositionsSortedAndGenuineProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 100 + r.Intn(500)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + r.Intn(2))
		}
		plen := 1 + r.Intn(10)
		pattern := make([]byte, plen)
		for i := range pattern {
			pattern[i] = byte('a' + r.Intn(2))
		}
		for _, m := range All() {
			m.Precompute(pattern)
			got := m.Search(text)
			prev := -1
			for _, pos := range got {
				if pos <= prev {
					return false
				}
				prev = pos
				if !matchAt(pattern, text, pos) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
