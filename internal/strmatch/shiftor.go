package strmatch

// ShiftOr is the bit-parallel Shift-Or (bitap) algorithm of Baeza-Yates
// and Gonnet: the nondeterministic prefix automaton is simulated in a
// machine word, one shift-or per text byte. The paper's implementation
// uses SSE bit parallelism; this one uses a 64-bit word, so patterns up to
// 64 bytes run in the fast path. Longer patterns are matched by filtering
// on their 64-byte prefix and verifying the remainder.
type ShiftOr struct {
	pattern []byte
	masks   [256]uint64
	lim     uint64 // bit at position min(m,64)-1
	flen    int    // filter length: min(m, 64)
}

// NewShiftOr creates an unprepared Shift-Or matcher.
func NewShiftOr() *ShiftOr { return &ShiftOr{} }

// Name returns "ShiftOr".
func (s *ShiftOr) Name() string { return "ShiftOr" }

// Precompute builds the per-byte bit masks.
func (s *ShiftOr) Precompute(pattern []byte) {
	p := checkPattern(pattern)
	s.pattern = p
	s.flen = len(p)
	if s.flen > 64 {
		s.flen = 64
	}
	for i := range s.masks {
		s.masks[i] = ^uint64(0)
	}
	for i := 0; i < s.flen; i++ {
		s.masks[p[i]] &^= 1 << uint(i)
	}
	s.lim = 1 << uint(s.flen-1)
}

// Search returns all match positions.
func (s *ShiftOr) Search(text []byte) []int {
	m, n := len(s.pattern), len(text)
	var out []int
	if m > n {
		return nil
	}
	state := ^uint64(0)
	needVerify := m > 64
	for i := 0; i < n; i++ {
		state = (state << 1) | s.masks[text[i]]
		if state&s.lim == 0 {
			pos := i - s.flen + 1
			if !needVerify {
				out = append(out, pos)
			} else if pos+m <= n && equalSuffix(s.pattern, text, pos) {
				out = append(out, pos)
			}
		}
	}
	return out
}

// equalSuffix verifies pattern[64:] against text starting at pos+64,
// assuming the first 64 bytes already matched via the bit filter.
func equalSuffix(pattern, text []byte, pos int) bool {
	for i := 64; i < len(pattern); i++ {
		if text[pos+i] != pattern[i] {
			return false
		}
	}
	return true
}

// Hash3 is Lecroq's HASHq algorithm for q = 3 (a Wu-Manber-style single
// pattern matcher): a shift table indexed by a hash of the last three
// window bytes yields long skips; zero-shift windows are verified.
// It requires patterns of at least 3 bytes; shorter patterns fall back to
// the reference scan.
type Hash3 struct {
	pattern []byte
	shift   []int
	shift0  int // shift applied after a candidate window
}

const hash3TableBits = 13 // 8192-entry shift table

// NewHash3 creates an unprepared Hash3 matcher.
func NewHash3() *Hash3 { return &Hash3{} }

// Name returns "Hash3".
func (h *Hash3) Name() string { return "Hash3" }

func hash3(a, b, c byte) int {
	const mask = 1<<hash3TableBits - 1
	return ((int(a)<<5 ^ int(b)<<3 ^ int(c)) * 0x9E37) & mask
}

// Precompute builds the 3-gram shift table.
func (h *Hash3) Precompute(pattern []byte) {
	p := checkPattern(pattern)
	h.pattern = p
	m := len(p)
	if m < 3 {
		h.shift = nil
		return
	}
	size := 1 << hash3TableBits
	if h.shift == nil {
		h.shift = make([]int, size)
	}
	for i := range h.shift {
		h.shift[i] = m - 2
	}
	h.shift0 = m - 2
	// The 3-gram ending at pattern position i (i = 2..m-1) allows a shift
	// of m-1-i; the last one (i = m-1) defines the zero-shift bucket.
	for i := 2; i < m; i++ {
		hv := hash3(p[i-2], p[i-1], p[i])
		sh := m - 1 - i
		if sh == 0 {
			h.shift0 = h.shift[hv]
			if h.shift0 == 0 {
				// The same hash occurred for the final 3-gram earlier in
				// the pattern; fall back to a safe shift of 1.
				h.shift0 = 1
			}
			h.shift[hv] = 0
		} else if sh < h.shift[hv] {
			h.shift[hv] = sh
		}
	}
	if h.shift0 < 1 {
		h.shift0 = 1
	}
}

// Search returns all match positions.
func (h *Hash3) Search(text []byte) []int {
	p, m, n := h.pattern, len(h.pattern), len(text)
	if m > n {
		return nil
	}
	if h.shift == nil {
		return bruteSearch(p, text)
	}
	var out []int
	j := m - 1
	for j < n {
		sh := h.shift[hash3(text[j-2], text[j-1], text[j])]
		if sh == 0 {
			pos := j - m + 1
			if matchAt(p, text, pos) {
				out = append(out, pos)
			}
			j += h.shift0
		} else {
			j += sh
		}
	}
	return out
}

func matchAt(pattern, text []byte, pos int) bool {
	if pos < 0 || pos+len(pattern) > len(text) {
		return false
	}
	for i, c := range pattern {
		if text[pos+i] != c {
			return false
		}
	}
	return true
}
