package strmatch

// SSEF is Külekci's SSE filter algorithm: the original extracts one chosen
// bit from each of 16 text bytes with SSE2 (pmovmskb), uses the resulting
// 16-bit fingerprint to look up candidate alignments in a precomputed
// filter table, and verifies candidates byte-wise. It excels on long
// patterns because whole 16-byte blocks are discarded with a couple of
// instructions.
//
// Go has no stdlib SIMD, so this implementation packs 8 text bytes into a
// uint64 and extracts the chosen bit of each byte with two multiplies and
// a shift — the same filter-then-verify structure on half the register
// width. The filtered block width K is 8; patterns must satisfy
// m ≥ 2·K−1 = 15 so that every occurrence fully contains an aligned
// block. Shorter patterns fall back to the reference scan (the paper's
// SSEF likewise requires long patterns; the Hybrid matcher routes short
// patterns elsewhere).
type SSEF struct {
	pattern []byte
	bit     uint       // which bit of each byte feeds the fingerprint
	buckets [256][]int // fingerprint → candidate alignment offsets d
	short   bool
}

const ssefK = 8 // filter block width (16 in the SSE original)

// NewSSEF creates an unprepared SSEF matcher.
func NewSSEF() *SSEF { return &SSEF{} }

// Name returns "SSEF".
func (s *SSEF) Name() string { return "SSEF" }

// MinPatternLen is the shortest pattern the SSEF fast path supports.
const MinPatternLen = 2*ssefK - 1

// Precompute chooses the most discriminative bit position and builds the
// fingerprint → alignment table.
func (s *SSEF) Precompute(pattern []byte) {
	p := checkPattern(pattern)
	s.pattern = p
	m := len(p)
	s.short = m < MinPatternLen
	if s.short {
		return
	}

	// Pick the bit with frequency closest to 50% across pattern bytes —
	// the analogue of SSEF's per-pattern shift selection — so fingerprints
	// spread evenly.
	bestBit, bestScore := uint(0), -1.0
	for b := uint(0); b < 8; b++ {
		ones := 0
		for _, c := range p {
			if c>>b&1 == 1 {
				ones++
			}
		}
		frac := float64(ones) / float64(m)
		score := -((frac - 0.5) * (frac - 0.5))
		if bestScore == -1 || score > bestScore {
			bestScore = score
			bestBit = b
		}
	}
	s.bit = bestBit

	for i := range s.buckets {
		s.buckets[i] = nil
	}
	// An occurrence starting at text position t covers the aligned block
	// beginning at t+d for d = (K − t mod K) mod K ∈ [0, K). The block
	// then holds pattern bytes p[d..d+K); its fingerprint indexes the
	// candidate list.
	for d := 0; d < ssefK; d++ {
		fp := 0
		for j := 0; j < ssefK; j++ {
			// fingerprint8 gathers byte j into bit K−1−j.
			fp |= int(p[d+j]>>s.bit&1) << uint(ssefK-1-j)
		}
		s.buckets[fp] = append(s.buckets[fp], d)
	}
}

// Search returns all match positions.
func (s *SSEF) Search(text []byte) []int {
	p, m, n := s.pattern, len(s.pattern), len(text)
	if m > n {
		return nil
	}
	if s.short {
		return bruteSearch(p, text)
	}
	var out []int
	// Scan aligned 8-byte blocks. A match starting at t has its first
	// fully-contained aligned block at B = ceil(t/K)·K with B+K ≤ t+m
	// (guaranteed by m ≥ 2K−1), so every occurrence is found exactly once
	// through that block.
	for b := 0; b+ssefK <= n; b += ssefK {
		fp := fingerprint8(text[b:b+ssefK], s.bit)
		for _, d := range s.buckets[fp] {
			t := b - d
			if t >= 0 && t+m <= n && t > b-ssefK && matchAt(p, text, t) {
				out = append(out, t)
			}
		}
	}
	sortPositions(out)
	return out
}

// fingerprint8 extracts the chosen bit of each of the 8 bytes into an
// 8-bit value — the word-parallel stand-in for pmovmskb. The multiply
// gather places byte j's bit at result bit 7−j.
func fingerprint8(block []byte, bit uint) int {
	// Load the 8 bytes into a word (little-endian byte j at bits 8j..).
	w := uint64(block[0]) | uint64(block[1])<<8 | uint64(block[2])<<16 |
		uint64(block[3])<<24 | uint64(block[4])<<32 | uint64(block[5])<<40 |
		uint64(block[6])<<48 | uint64(block[7])<<56
	// Isolate the chosen bit of every byte…
	w = (w >> bit) & 0x0101010101010101
	// …and gather the eight isolated bits into the low byte.
	return int((w * 0x8040201008040201 >> 56) & 0xFF)
}

// sortPositions sorts a small, mostly-sorted position list in place.
func sortPositions(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Hybrid is the heuristic matcher of the paper's first case study: it
// inspects the pattern length and delegates to the expected-best of the
// seven algorithms — bit-parallel ShiftOr for very short patterns, EBOM
// for the midrange, and the SSEF filter once patterns are long enough for
// block filtering to pay off.
type Hybrid struct {
	inner Matcher
}

// NewHybrid creates an unprepared Hybrid matcher.
func NewHybrid() *Hybrid { return &Hybrid{} }

// Name returns "Hybrid".
func (h *Hybrid) Name() string { return "Hybrid" }

// Precompute selects and prepares the delegate.
func (h *Hybrid) Precompute(pattern []byte) {
	p := checkPattern(pattern)
	switch {
	case len(p) <= 8:
		h.inner = NewShiftOr()
	case len(p) < MinPatternLen:
		h.inner = NewEBOM()
	default:
		h.inner = NewSSEF()
	}
	h.inner.Precompute(p)
}

// Search delegates to the selected algorithm.
func (h *Hybrid) Search(text []byte) []int {
	if h.inner == nil {
		panic("strmatch: Hybrid.Search before Precompute")
	}
	return h.inner.Search(text)
}

// Delegate returns the name of the algorithm Hybrid selected, or "" before
// Precompute.
func (h *Hybrid) Delegate() string {
	if h.inner == nil {
		return ""
	}
	return h.inner.Name()
}
