package strmatch

import (
	"fmt"
	"io"
)

// DefaultChunkSize is the streaming read granularity of SearchReader.
const DefaultChunkSize = 1 << 20

// SearchReader searches a stream with an already precomputed matcher,
// returning absolute match positions. The text is processed in chunks of
// chunkSize bytes (DefaultChunkSize when ≤ 0) with a len(pattern)−1
// overlap carried between chunks, so corpora larger than memory — the
// realistic setting for the paper's string matching workload — stream
// through a constant-size window. Matches are reported exactly once, in
// ascending order.
func SearchReader(m Matcher, r io.Reader, pattern []byte, chunkSize int) ([]int, error) {
	pl := len(pattern)
	if pl == 0 {
		return nil, fmt.Errorf("strmatch: empty pattern")
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize < pl {
		chunkSize = pl
	}
	// The window holds the previous chunk's tail (pl−1 bytes) plus the
	// current chunk.
	buf := make([]byte, 0, chunkSize+pl-1)
	var out []int
	base := 0 // absolute offset of buf[0]
	eof := false
	for !eof {
		// Fill up to capacity.
		space := cap(buf) - len(buf)
		n, err := io.ReadFull(r, buf[len(buf):len(buf)+space])
		buf = buf[:len(buf)+n]
		switch err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			eof = true
		default:
			return out, err
		}

		// Search reports only complete matches, and a complete match
		// cannot start inside the last pl−1 bytes, so reporting everything
		// neither duplicates (the carried tail alone is too short to hold
		// a match) nor loses matches (one straddling the read boundary
		// completes in the next window).
		for _, pos := range m.Search(buf) {
			out = append(out, base+pos)
		}
		if eof {
			break
		}
		// Carry the tail.
		carry := pl - 1
		base += len(buf) - carry
		copy(buf, buf[len(buf)-carry:])
		buf = buf[:carry]
	}
	return out, nil
}
