package strmatch

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

func TestSearchReaderMatchesInMemory(t *testing.T) {
	text := corpus.Bible(1<<19, 4)
	pattern := []byte(corpus.QueryPhrase)
	want := bruteSearch(pattern, text)
	for _, m := range All() {
		m.Precompute(pattern)
		for _, chunk := range []int{64, 1024, 1 << 16, 0 /* default */} {
			got, err := SearchReader(m, bytes.NewReader(text), pattern, chunk)
			if err != nil {
				t.Fatalf("%s chunk %d: %v", m.Name(), chunk, err)
			}
			if !positionsEqual(got, want) {
				t.Errorf("%s chunk %d: got %d matches, want %d", m.Name(), chunk, len(got), len(want))
			}
		}
	}
}

func TestSearchReaderBoundaryStraddle(t *testing.T) {
	// Pattern straddling every possible chunk boundary offset.
	pattern := []byte("needle")
	m := NewKMP()
	m.Precompute(pattern)
	for offset := 0; offset < 12; offset++ {
		text := append(bytes.Repeat([]byte("x"), 60+offset), pattern...)
		text = append(text, bytes.Repeat([]byte("y"), 40)...)
		got, err := SearchReader(m, bytes.NewReader(text), pattern, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteSearch(pattern, text)
		if !positionsEqual(got, want) {
			t.Errorf("offset %d: got %v, want %v", offset, got, want)
		}
	}
}

func TestSearchReaderEdgeCases(t *testing.T) {
	m := NewBoyerMoore()
	m.Precompute([]byte("ab"))
	// Empty stream.
	got, err := SearchReader(m, bytes.NewReader(nil), []byte("ab"), 16)
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream: %v %v", got, err)
	}
	// Stream shorter than the pattern.
	got, err = SearchReader(m, bytes.NewReader([]byte("a")), []byte("ab"), 16)
	if err != nil || len(got) != 0 {
		t.Errorf("short stream: %v %v", got, err)
	}
	// Empty pattern errors.
	if _, err := SearchReader(m, bytes.NewReader([]byte("x")), nil, 16); err == nil {
		t.Error("empty pattern did not error")
	}
	// Chunk smaller than the pattern is bumped up.
	m.Precompute([]byte("abcdef"))
	got, err = SearchReader(m, bytes.NewReader([]byte("xxabcdefxx")), []byte("abcdef"), 2)
	if err != nil || !positionsEqual(got, []int{2}) {
		t.Errorf("tiny chunk: %v %v", got, err)
	}
}

type failingReader struct{ after int }

func (f *failingReader) Read(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk on fire")
	}
	n := f.after
	if n > len(p) {
		n = len(p)
	}
	for i := 0; i < n; i++ {
		p[i] = 'x'
	}
	f.after -= n
	return n, nil
}

func TestSearchReaderPropagatesErrors(t *testing.T) {
	m := NewKMP()
	m.Precompute([]byte("zz"))
	_, err := SearchReader(m, &failingReader{after: 100}, []byte("zz"), 32)
	if err == nil || err.Error() != "disk on fire" {
		t.Errorf("error not propagated: %v", err)
	}
}

// Property: streaming equals in-memory for random texts, patterns and
// chunk sizes.
func TestSearchReaderEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(3000)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + r.Intn(3))
		}
		plen := 1 + r.Intn(15)
		start := r.Intn(n - plen)
		pattern := append([]byte(nil), text[start:start+plen]...)
		m := All()[r.Intn(8)]
		m.Precompute(pattern)
		want := m.Search(text)
		chunk := plen + r.Intn(200)
		got, err := SearchReader(m, bytes.NewReader(text), pattern, chunk)
		return err == nil && positionsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
