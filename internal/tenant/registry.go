package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/search"
	"repro/internal/wire"
)

// ErrUnknownTenant is returned by Acquire for a name never registered.
var ErrUnknownTenant = errors.New("tenant: unknown tenant")

// Config configures a Registry.
type Config struct {
	// Root is the persistence root; each tenant owns Root/<name>/ with
	// its spec.json and a ckpt/ checkpoint directory. Empty disables
	// persistence — engines are memory-only and MaxResident is ignored,
	// since spilling without a checkpoint would destroy tenant state.
	Root string
	// MaxResident caps how many tenant engines stay live at once; the
	// least-recently-used idle tenant beyond the cap is checkpointed and
	// released, to be lazily warm-restarted by its next request. Zero
	// means unlimited.
	MaxResident int
	// Roster resolves workload names; nil means BuiltinRoster.
	Roster RosterFunc
	// Factory is the per-algorithm search factory; nil means the core
	// default.
	Factory search.Factory
}

// Registry owns every tenant's engine lifecycle. All residency
// transitions happen under one mutex: materialization and spill are
// rare (a tenant switch, not a trial), so the simplicity of a single
// lock beats fine-grained locking that would have to order engine
// checkpoints against concurrent acquires anyway.
type Registry struct {
	cfg       Config
	epochBase int64

	mu       sync.Mutex
	ts       map[string]*Tenant
	tick     uint64 // LRU clock, bumped per acquire
	epochSeq int64
}

// Tenant is one registered tuning problem. The engine pointer is nil
// while the tenant is spilled; summary fields cache the last resident
// state so the aggregate view never forces a warm restart.
type Tenant struct {
	spec     Spec
	algos    []core.Algorithm
	names    []string
	hash     uint32 // wire roster hash (handshake compatibility)
	specHash uint32 // EngineSpec.Hash (persistence compatibility)
	epoch    int64  // session epoch, unique per tenant per process

	eng     *core.ShardedEngine // nil when spilled
	lastUse uint64
	inUse   int // active request refcount; an in-use engine never spills

	spills, restarts uint64
	// Summary cached at spill time (refreshed while resident).
	sumIter      int
	sumCompleted uint64
	sumBestAlgo  int
	sumBestName  string
	sumBestVal   float64
}

// Spec returns the tenant's registered spec.
func (t *Tenant) Spec() Spec { return t.spec }

// Epoch returns the tenant's session epoch for this server process.
// Epochs are unique across the registry's tenants, so a report carried
// from one tenant's lease can never pass another tenant's epoch check.
func (t *Tenant) Epoch() int64 { return t.epoch }

// Hash returns the wire config hash over the tenant's roster names.
func (t *Tenant) Hash() uint32 { return t.hash }

// Names returns the tenant's roster names (index = wire algorithm
// index).
func (t *Tenant) Names() []string { return append([]string(nil), t.names...) }

// Info is one tenant's row in the aggregate view.
type Info struct {
	Name       string
	Resident   bool
	Epoch      int64
	Iterations int
	InFlight   int
	Completed  uint64
	BestAlgo   int
	BestName   string
	BestValue  float64
	Spills     uint64
	Restarts   uint64
}

// NewRegistry builds a registry and, when cfg.Root exists, rediscovers
// every tenant that left a spec.json behind — a restarted server comes
// back knowing all its tenants, each resumable from its own journal.
func NewRegistry(cfg Config) (*Registry, error) {
	if cfg.Roster == nil {
		cfg.Roster = BuiltinRoster
	}
	if cfg.MaxResident > 0 && cfg.Root == "" {
		return nil, errors.New("tenant: MaxResident needs a persistence Root (spilling without checkpoints would lose state)")
	}
	r := &Registry{
		cfg:       cfg,
		epochBase: time.Now().UnixNano(),
		ts:        make(map[string]*Tenant),
	}
	if cfg.Root != "" {
		entries, err := os.ReadDir(cfg.Root)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("tenant: read root %s: %w", cfg.Root, err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(cfg.Root, e.Name(), "spec.json"))
			if errors.Is(err, os.ErrNotExist) {
				continue // not a tenant directory
			}
			if err != nil {
				return nil, fmt.Errorf("tenant: read spec for %s: %w", e.Name(), err)
			}
			var spec Spec
			if err := json.Unmarshal(data, &spec); err != nil {
				return nil, fmt.Errorf("tenant: decode spec for %s: %w", e.Name(), err)
			}
			if spec.Name != e.Name() {
				return nil, fmt.Errorf("tenant: spec in %s names tenant %q", e.Name(), spec.Name)
			}
			if err := r.Register(spec); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// Register adds a tenant. Registering a name that exists (typically
// rediscovered from disk) is a no-op when the spec is semantically
// identical and an error when it differs — an old checkpoint must never
// be resumed under changed tuning semantics. The engine is not built
// here; the first Acquire materializes it.
func (r *Registry) Register(spec Spec) error {
	algos, err := spec.validate(r.cfg.Roster)
	if err != nil {
		return err
	}
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
	}
	specHash := spec.Engine.Hash(names, spec.selector())

	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.ts[spec.Name]; ok {
		if old.specHash != specHash {
			return fmt.Errorf("tenant %s: spec changed (hash %08x, registered %08x); remove %s or restore the spec",
				spec.Name, specHash, old.specHash, r.dir(spec.Name))
		}
		return nil
	}
	t := &Tenant{
		spec:     spec,
		algos:    algos,
		names:    names,
		hash:     wire.ConfigHash(names),
		specHash: specHash,
	}
	r.epochSeq++
	t.epoch = r.epochBase + r.epochSeq
	t.sumBestAlgo = -1
	if r.cfg.Root != "" {
		dir := r.dir(spec.Name)
		if err := os.MkdirAll(filepath.Join(dir, "ckpt"), 0o755); err != nil {
			return fmt.Errorf("tenant %s: %w", spec.Name, err)
		}
		data, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			return fmt.Errorf("tenant %s: encode spec: %w", spec.Name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, "spec.json"), append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("tenant %s: write spec: %w", spec.Name, err)
		}
	}
	r.ts[spec.Name] = t
	return nil
}

// dir is the tenant's directory under the root.
func (r *Registry) dir(name string) string { return filepath.Join(r.cfg.Root, name) }

// ckptDir is the tenant's checkpoint directory ("" when not persistent).
func (r *Registry) ckptDir(name string) string {
	if r.cfg.Root == "" {
		return ""
	}
	return filepath.Join(r.cfg.Root, name, "ckpt")
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ts[name] != nil
}

// Names returns all registered tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.ts))
	for n := range r.ts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tenant returns the named tenant's registration (nil if unknown). The
// returned value's identity fields (Spec, Epoch, Hash, Names) are
// immutable after Register; engine residency is the registry's business.
func (r *Registry) Tenant(name string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ts[name]
}

// Acquire returns the named tenant's live engine, warm-restarting it
// from checkpoint if it was spilled (or building it fresh on first
// use), and pins it resident until release is called. Every server
// request brackets its engine calls in an Acquire/release pair, so the
// LRU can never spill an engine out from under a request.
func (r *Registry) Acquire(name string) (*core.ShardedEngine, *Tenant, func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.ts[name]
	if t == nil {
		return nil, nil, nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	r.tick++
	t.lastUse = r.tick
	if t.eng == nil {
		if err := r.materialize(t); err != nil {
			return nil, nil, nil, err
		}
		r.evictOver(t)
	}
	t.inUse++
	eng := t.eng
	release := func() {
		r.mu.Lock()
		t.inUse--
		r.mu.Unlock()
	}
	return eng, t, release, nil
}

// materialize builds or resumes the tenant's engine (r.mu held).
func (r *Registry) materialize(t *Tenant) error {
	sel, err := nominal.NewByName(t.spec.selector())
	if err != nil {
		return err // validated at Register; cannot happen
	}
	dir := r.ckptDir(t.spec.Name)
	if dir != "" && core.HasCheckpoint(dir) {
		t.eng, err = t.spec.Engine.Resume(t.algos, sel, r.cfg.Factory, dir)
		if err != nil {
			return fmt.Errorf("tenant %s: %w", t.spec.Name, err)
		}
		t.restarts++
	} else {
		t.eng, err = t.spec.Engine.Build(t.algos, sel, r.cfg.Factory, dir)
		if err != nil {
			return fmt.Errorf("tenant %s: %w", t.spec.Name, err)
		}
	}
	return nil
}

// evictOver spills LRU idle tenants while more than MaxResident are
// live, never touching keep (the tenant just acquired) or any tenant
// with requests or trials in flight (r.mu held). Spilling checkpoints
// the engine first; a failed checkpoint keeps the engine resident — over
// the cap beats losing state.
func (r *Registry) evictOver(keep *Tenant) {
	if r.cfg.MaxResident <= 0 {
		return
	}
	for {
		resident := 0
		var victim *Tenant
		for _, t := range r.ts {
			if t.eng == nil {
				continue
			}
			resident++
			if t == keep || t.inUse > 0 || t.eng.Stats().InFlight > 0 {
				continue
			}
			if victim == nil || t.lastUse < victim.lastUse {
				victim = t
			}
		}
		if resident <= r.cfg.MaxResident || victim == nil {
			return
		}
		if err := victim.eng.Checkpoint(); err != nil {
			return
		}
		victim.refreshSummary()
		victim.eng = nil
		victim.spills++
	}
}

// refreshSummary caches the resident engine's read-side state (caller
// holds r.mu; t.eng non-nil).
func (t *Tenant) refreshSummary() {
	t.sumIter = t.eng.Iterations()
	t.sumCompleted = t.eng.Stats().Completed
	algo, _, val := t.eng.Best()
	t.sumBestAlgo = algo
	t.sumBestVal = 0
	t.sumBestName = ""
	if algo >= 0 {
		t.sumBestName = t.names[algo]
		t.sumBestVal = val
	}
}

// Snapshot returns every tenant's Info row, sorted by name, without
// materializing anything: spilled tenants report their spill-time
// summary.
func (r *Registry) Snapshot() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.ts))
	for _, t := range r.ts {
		in := Info{
			Name:     t.spec.Name,
			Resident: t.eng != nil,
			Epoch:    t.epoch,
			Spills:   t.spills,
			Restarts: t.restarts,
		}
		if t.eng != nil {
			t.refreshSummary()
			in.InFlight = t.eng.Stats().InFlight
		}
		in.Iterations = t.sumIter
		in.Completed = t.sumCompleted
		in.BestAlgo = t.sumBestAlgo
		in.BestName = t.sumBestName
		in.BestValue = t.sumBestVal
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Resident returns how many tenant engines are currently live.
func (r *Registry) Resident() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.ts {
		if t.eng != nil {
			n++
		}
	}
	return n
}

// ReclaimExpired sweeps every resident tenant's expired leases,
// returning the total reclaimed.
func (r *Registry) ReclaimExpired() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.ts {
		if t.eng != nil {
			n += t.eng.ReclaimExpired()
		}
	}
	return n
}

// InFlight sums in-flight leases across resident tenants.
func (r *Registry) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.ts {
		if t.eng != nil {
			n += t.eng.Stats().InFlight
		}
	}
	return n
}

// CheckpointAll checkpoints every resident tenant in sorted name order
// — the deterministic drain order — and returns the names in the order
// they were checkpointed. All tenants are attempted even after a
// failure; the first error is returned.
func (r *Registry) CheckpointAll() ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.ts))
	for n, t := range r.ts {
		if t.eng != nil {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var firstErr error
	for _, n := range names {
		if err := r.ts[n].eng.Checkpoint(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("tenant %s: %w", n, err)
		}
	}
	return names, firstErr
}
