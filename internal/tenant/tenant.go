// Package tenant turns "one process = one engine" into a registry of
// named tuning problems. Each tenant is a serialized option set
// (core.EngineSpec plus a workload roster and a selector name) with its
// own checkpoint directory, session epoch, and drift/calibration state;
// the registry owns the engine lifecycle — create, lazy warm-restart
// from checkpoint, LRU spill when too many tenants are resident, and
// checkpoint-all on drain. The server in internal/tuned routes each
// connection to a tenant by the name in its Hello handshake and
// otherwise works exactly as before: every request is one engine call,
// now against the session's tenant.
package tenant

import (
	"fmt"
	"regexp"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/strmatch"
)

// DefaultName is the tenant a session with no Hello.Tenant lands on —
// in particular every protocol-1 client, which predates the field.
const DefaultName = "default"

// DefaultSelector is the selector spec a tenant with none gets.
const DefaultSelector = "egreedy:10" // ε = 10%, the paper's default exploration rate

// nameRE bounds tenant names to path-safe tokens: each tenant owns a
// directory named after it, so separators, dots-only names and empty
// strings must never reach the filesystem.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9_][a-zA-Z0-9._-]{0,63}$`)

// ValidName reports whether name is usable as a tenant name (and hence
// as its directory name under the registry root).
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Spec is one tenant's full serialized configuration: everything needed
// to rebuild its engine in a fresh process. Workload names the
// algorithm roster (resolved through the registry's RosterFunc),
// Selector is a nominal.NewByName spec, and Engine carries the
// engine-level option set. The registry persists the Spec as spec.json
// in the tenant's directory, next to its checkpoints, so a restarted
// server rediscovers its tenants from disk alone.
type Spec struct {
	Name     string          `json:"name"`
	Workload string          `json:"workload"`
	Selector string          `json:"selector,omitempty"` // "" = DefaultSelector
	Engine   core.EngineSpec `json:"engine"`
}

func (s Spec) selector() string {
	if s.Selector == "" {
		return DefaultSelector
	}
	return s.Selector
}

// validate resolves the spec against a roster function, returning the
// roster it names. Every failure here is a configuration error the
// operator must fix; nothing is deferred to first lease.
func (s Spec) validate(roster RosterFunc) ([]core.Algorithm, error) {
	if !ValidName(s.Name) {
		return nil, fmt.Errorf("tenant: invalid name %q", s.Name)
	}
	algos, err := roster(s.Workload)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", s.Name, err)
	}
	if len(algos) == 0 {
		return nil, fmt.Errorf("tenant %s: workload %q has an empty roster", s.Name, s.Workload)
	}
	if _, err := nominal.NewByName(s.selector()); err != nil {
		return nil, fmt.Errorf("tenant %s: %w", s.Name, err)
	}
	return algos, nil
}

// RosterFunc resolves a workload name to its algorithm roster. The
// roster is code (measurement spaces, not data), which is why specs
// carry the name and the registry carries the resolver.
type RosterFunc func(workload string) ([]core.Algorithm, error)

// BuiltinRoster resolves the two workloads the commands ship: the
// paper's parallel string-matching roster and the synthetic sleep
// roster used by smoke tests and benchmarks. atune-worker builds its
// measurement table from the same names, delivered in the handshake.
func BuiltinRoster(workload string) ([]core.Algorithm, error) {
	switch workload {
	case "strmatch":
		names := strmatch.Names()
		algos := make([]core.Algorithm, len(names))
		for i, n := range names {
			algos[i] = core.Algorithm{Name: n}
		}
		return algos, nil
	case "sleep":
		return []core.Algorithm{
			{Name: "sleep-steady"},
			{Name: "sleep-tuned", Space: param.NewSpace(param.NewRatio("alpha", 1, 10))},
			{Name: "sleep-laggard"},
		}, nil
	default:
		return nil, fmt.Errorf("tenant: unknown workload %q (want strmatch or sleep)", workload)
	}
}
