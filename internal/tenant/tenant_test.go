package tenant

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// drive completes n trials against a tenant's engine through the
// registry, leaving the acquire released between trials so the LRU may
// act.
func drive(t *testing.T, r *Registry, name string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		eng, _, release, err := r.Acquire(name)
		if err != nil {
			t.Fatalf("acquire %s: %v", name, err)
		}
		leases, err := eng.LeaseN(1)
		if err != nil || len(leases) != 1 {
			t.Fatalf("lease on %s: %v (%d)", name, err, len(leases))
		}
		// Arm index sets the cost so tenants develop distinct winners.
		for _, cerr := range eng.CompleteN([]core.TrialResult{{ID: leases[0].ID, Value: float64(1 + leases[0].Algo)}}) {
			if cerr != nil {
				t.Fatalf("complete on %s: %v", name, cerr)
			}
		}
		release()
	}
}

func sleepSpec(name string) Spec {
	return Spec{Name: name, Workload: "sleep", Engine: core.EngineSpec{Seed: 7, SnapshotEvery: 5}}
}

func TestRegisterValidation(t *testing.T) {
	r, err := NewRegistry(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Spec{
		{Name: "", Workload: "sleep"},
		{Name: "../evil", Workload: "sleep"},
		{Name: "a/b", Workload: "sleep"},
		{Name: ".hidden", Workload: "sleep"},
		{Name: strings.Repeat("x", 80), Workload: "sleep"},
		{Name: "ok", Workload: "nope"},
		{Name: "ok", Workload: "sleep", Selector: "egreedy:banana"},
	} {
		if err := r.Register(bad); err == nil {
			t.Errorf("Register(%+v) accepted", bad)
		}
	}
	if err := r.Register(sleepSpec("team-a")); err != nil {
		t.Fatal(err)
	}
	// Identical re-registration is a no-op; a changed spec is refused.
	if err := r.Register(sleepSpec("team-a")); err != nil {
		t.Fatalf("identical re-register: %v", err)
	}
	changed := sleepSpec("team-a")
	changed.Engine.Shards = 4
	if err := r.Register(changed); err == nil {
		t.Fatal("changed spec accepted for existing tenant")
	}
}

func TestAcquireUnknown(t *testing.T) {
	r, _ := NewRegistry(Config{})
	if _, _, _, err := r.Acquire("ghost"); err == nil {
		t.Fatal("Acquire of unregistered tenant succeeded")
	}
}

func TestMaxResidentNeedsRoot(t *testing.T) {
	if _, err := NewRegistry(Config{MaxResident: 1}); err == nil {
		t.Fatal("MaxResident without Root accepted")
	}
}

// TestLRUSpillAndWarmRestart is the registry's core contract: under a
// residency cap the least-recently-used idle tenant is checkpointed and
// released, and its next acquire warm-restarts it with identical
// Best/Counts.
func TestLRUSpillAndWarmRestart(t *testing.T) {
	root := t.TempDir()
	r, err := NewRegistry(Config{Root: root, MaxResident: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"alpha", "beta"} {
		if err := r.Register(sleepSpec(n)); err != nil {
			t.Fatal(err)
		}
	}

	drive(t, r, "alpha", 20)
	eng, _, release, err := r.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	wantIter := eng.Iterations()
	wantCounts := eng.Counts()
	wantAlgo, _, wantVal := eng.Best()
	release()

	// Materializing beta must spill alpha (cap 1) with a checkpoint.
	drive(t, r, "beta", 3)
	if got := r.Resident(); got != 1 {
		t.Fatalf("resident=%d after spill, want 1", got)
	}
	if gens := checkpoint.Generations(filepath.Join(root, "alpha", "ckpt")); len(gens) == 0 {
		t.Fatal("spill wrote no checkpoint for alpha")
	}

	// Next acquire warm-restarts alpha from its checkpoint.
	eng, ten, release, err := r.Acquire("alpha")
	if err != nil {
		t.Fatalf("warm restart: %v", err)
	}
	defer release()
	if ten.Epoch() == 0 {
		t.Fatal("tenant has no epoch")
	}
	if got := eng.Iterations(); got != wantIter {
		t.Fatalf("restarted iterations %d, want %d", got, wantIter)
	}
	gotCounts := eng.Counts()
	for i := range wantCounts {
		if gotCounts[i] != wantCounts[i] {
			t.Fatalf("restarted counts %v, want %v", gotCounts, wantCounts)
		}
	}
	gotAlgo, _, gotVal := eng.Best()
	if gotAlgo != wantAlgo || gotVal != wantVal {
		t.Fatalf("restarted best (%d, %g), want (%d, %g)", gotAlgo, gotVal, wantAlgo, wantVal)
	}

	infos := r.Snapshot()
	var alpha *Info
	for i := range infos {
		if infos[i].Name == "alpha" {
			alpha = &infos[i]
		}
	}
	if alpha == nil || alpha.Spills == 0 || alpha.Restarts == 0 {
		t.Fatalf("alpha info %+v: want spills and restarts > 0", alpha)
	}
}

// TestAcquirePinsResidency: a tenant with an unreleased acquire (or
// trials in flight) is never the spill victim.
func TestAcquirePinsResidency(t *testing.T) {
	root := t.TempDir()
	r, err := NewRegistry(Config{Root: root, MaxResident: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"alpha", "beta"} {
		if err := r.Register(sleepSpec(n)); err != nil {
			t.Fatal(err)
		}
	}
	engA, _, releaseA, err := r.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engA.LeaseN(1); err != nil {
		t.Fatal(err)
	}
	// Beta materializes over the cap, but alpha is pinned: both stay.
	_, _, releaseB, err := r.Acquire("beta")
	if err != nil {
		t.Fatal(err)
	}
	releaseB()
	if got := r.Resident(); got != 2 {
		t.Fatalf("resident=%d with pinned over-cap tenant, want 2", got)
	}
	releaseA()
}

// TestRestartRediscovery is the kill/restart leg: a fresh registry over
// the same root rediscovers every tenant from its spec.json and resumes
// its state from its own checkpoint directory.
func TestRestartRediscovery(t *testing.T) {
	root := t.TempDir()
	r, err := NewRegistry(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"alpha", "beta"} {
		if err := r.Register(sleepSpec(n)); err != nil {
			t.Fatal(err)
		}
	}
	drive(t, r, "alpha", 12)
	drive(t, r, "beta", 7)
	order, err := r.CheckpointAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "alpha" || order[1] != "beta" {
		t.Fatalf("CheckpointAll order %v, want [alpha beta]", order)
	}
	engA, _, rel, _ := r.Acquire("alpha")
	wantIter := engA.Iterations()
	rel()

	// "Kill" the process: a brand-new registry over the same root.
	r2, err := NewRegistry(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	names := r2.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("rediscovered %v, want [alpha beta]", names)
	}
	eng, ten, release, err := r2.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if got := eng.Iterations(); got != wantIter {
		t.Fatalf("resumed iterations %d, want %d", got, wantIter)
	}
	// A new process must never share an epoch with the old one (nor
	// with its sibling tenants).
	old := r.Tenant("alpha").Epoch()
	if ten.Epoch() == old {
		t.Fatal("restarted tenant reused the old process's epoch")
	}
	if ten.Epoch() == r2.Tenant("beta").Epoch() {
		t.Fatal("two tenants share an epoch")
	}
}
