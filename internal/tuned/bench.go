package tuned

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ctxtune"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/tenant"
)

// LoopbackThroughput measures wire-protocol trial throughput over
// loopback TCP. For each (workers, batch) cell a fresh server is
// started on 127.0.0.1, the given number of worker clients drive it
// until total trials are decided with the given LeaseN/CompleteN batch
// size, and the cell records completed trials per second. The
// measurement function costs nothing, so the numbers isolate the
// protocol round trips — exactly the overhead batching is meant to
// amortize. Cells are [len(workerCounts)][len(batchSizes)].
//
// The clients run the lockstep JSON-era shape: pooled connections, one
// request in flight each. LoopbackThroughputPipelined is the v3 hot
// path.
func LoopbackThroughput(workerCounts, batchSizes []int, total int) ([][]float64, error) {
	return loopbackSweep(workerCounts, batchSizes, total, false)
}

// LoopbackThroughputPipelined is LoopbackThroughput over the v3 hot
// path: every client multiplexes packed trial frames over one
// pipelined connection, and every worker overlaps its next lease with
// the current batch's measurement.
func LoopbackThroughputPipelined(workerCounts, batchSizes []int, total int) ([][]float64, error) {
	return loopbackSweep(workerCounts, batchSizes, total, true)
}

func loopbackSweep(workerCounts, batchSizes []int, total int, pipelined bool) ([][]float64, error) {
	out := make([][]float64, len(workerCounts))
	for wi, workers := range workerCounts {
		out[wi] = make([]float64, len(batchSizes))
		for bi, batch := range batchSizes {
			lps, err := loopbackCell(workers, batch, total, pipelined)
			if err != nil {
				return nil, fmt.Errorf("tuned: bench cell workers=%d batch=%d: %w", workers, batch, err)
			}
			out[wi][bi] = lps
		}
	}
	return out, nil
}

// benchAlgos mirrors the trial-engine benchmark's synthetic roster: a
// parameterless arm and a tunable one, so both the nominal and the
// numeric tuning paths run.
func benchAlgos() []core.Algorithm {
	return []core.Algorithm{
		{Name: "a"},
		{Name: "b", Space: param.NewSpace(param.NewRatio("x", 1, 2))},
	}
}

// TenantThroughput is the per-tenant outcome of one MultiTenantThroughput
// run.
type TenantThroughput struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	PerSec     float64 `json:"per_sec"`
}

// MultiTenantThroughput measures one multi-tenant server under tenants
// × workersPerTenant concurrent clients: each tenant's fleet drives its
// own engine to total trials with the given batch size, all over the
// same loopback listener. It returns the aggregate completed trials per
// second (wall clock of the whole run) and the per-tenant breakdown —
// the max/min of the per-tenant rates is the fairness ratio: 1.0 means
// the registry serves every tenant equally, large values mean one
// tenant starves another.
func MultiTenantThroughput(tenants, workersPerTenant, batch, total int) (float64, []TenantThroughput, error) {
	reg, err := tenant.NewRegistry(tenant.Config{
		Roster: func(string) ([]core.Algorithm, error) { return benchAlgos(), nil },
	})
	if err != nil {
		return 0, nil, err
	}
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("bench-%02d", i)
		spec := tenant.Spec{Name: names[i], Workload: "bench", Engine: core.EngineSpec{Seed: int64(i + 1)}}
		if err := reg.Register(spec); err != nil {
			return 0, nil, err
		}
	}
	srv := NewTenantServer(reg, WithTrialTarget(total))
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, nil, err
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	measure := func(algo int, cfg param.Config) float64 {
		if algo == 0 {
			return 2
		}
		return 1 + cfg[0]
	}

	start := time.Now()
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	perTenant := make([]time.Duration, tenants)
	for ti, name := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tStart := time.Now()
			var tw sync.WaitGroup
			for i := 0; i < workersPerTenant; i++ {
				tw.Add(1)
				go func() {
					defer tw.Done()
					c, err := Dial(addr, WithTenant(name))
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					defer c.Close()
					w := &Worker{Client: c, Measure: measure, Batch: batch}
					if _, err := w.Run(context.Background()); err != nil {
						errOnce.Do(func() { firstErr = err })
					}
				}()
			}
			tw.Wait()
			perTenant[ti] = time.Since(tStart)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, nil, firstErr
	}

	out := make([]TenantThroughput, tenants)
	aggregate := 0
	for ti, name := range names {
		eng, _, release, err := reg.Acquire(name)
		if err != nil {
			return 0, nil, err
		}
		iter := eng.Iterations()
		release()
		if iter < total {
			return 0, nil, fmt.Errorf("tenant %s finished at %d/%d trials", name, iter, total)
		}
		aggregate += iter
		out[ti] = TenantThroughput{Name: name, Iterations: iter, PerSec: float64(iter) / perTenant[ti].Seconds()}
	}
	return float64(aggregate) / elapsed.Seconds(), out, nil
}

// ContextualThroughput measures feature-routed wire throughput against
// the plain-engine baseline: the same worker count, batch size and
// trial budget run over loopback TCP — once against a bare
// ConcurrentTuner, once against a ctxtune.Engine with every lease
// carrying a feature vector (half the fleet in a cheap class, half in a
// dear class whose costs are 8× larger, so the partitioner actually
// splits mid-run). Returns both rates in trials per second plus the
// number of contexts the engine discovered; the ratio is the routing
// overhead the bench gates on. Each cell is the best of five
// interleaved runs: a single short loopback cell is scheduler-noise
// dominated (a ±20% swing run to run is normal on a loaded box), and
// the best-of estimates each path's capacity, which is what the
// overhead ratio compares — interleaving the pairs keeps slow drift in
// machine load from charging one path and not the other.
func ContextualThroughput(workers, batch, total int) (contextual, baseline float64, contexts int, err error) {
	const reps = 5
	for r := 0; r < reps; r++ {
		// The baseline runs the same windowed selector as the contextual
		// replicas: the ratio isolates the cost of routing, not of the
		// selector the contextual engine happens to need for warm starts.
		// Both cells drop per-iteration history — a throughput run has no
		// reader for it, and the contextual engine would pay the append
		// twice (replica and global fold), skewing the quotient with pure
		// bookkeeping.
		b, err := loopbackCellSel(workers, batch, total, false,
			&nominal.EpsilonGreedy{Eps: 0.10, RecencyWindow: 64},
			core.WithoutHistory())
		if err != nil {
			return 0, 0, 0, fmt.Errorf("tuned: contextual bench baseline: %w", err)
		}
		baseline = math.Max(baseline, b)
		c, n, err := contextualCell(workers, batch, total)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("tuned: contextual bench: %w", err)
		}
		if c > contextual {
			contextual, contexts = c, n
		}
	}
	return contextual, baseline, contexts, nil
}

func contextualCell(workers, batch, total int) (float64, int, error) {
	eng, err := ctxtune.New(ctxtune.Config{
		Algos: benchAlgos(),
		Selector: func() nominal.Selector {
			return &nominal.EpsilonGreedy{Eps: 0.10, RecencyWindow: 64}
		},
		Seed:        1,
		Partitioner: ctxtune.NewTree(1, 64, 1.5),
		Opts:        []core.Option{core.WithoutHistory()},
	})
	if err != nil {
		return 0, 0, err
	}
	srv := NewServer(eng, WithTrialTarget(total))
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	start := time.Now()
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	for i := 0; i < workers; i++ {
		feats, scale := []float64{1}, 1.0
		if i%2 == 1 {
			feats, scale = []float64{100}, 8.0
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, WithFeatures(feats))
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			defer c.Close()
			measure := func(algo int, cfg param.Config) float64 {
				if algo == 0 {
					return 2 * scale
				}
				return (1 + cfg[0]) * scale
			}
			w := &Worker{Client: c, Measure: measure, Batch: batch}
			if _, err := w.Run(context.Background()); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, 0, firstErr
	}
	if got := eng.Iterations(); got < total {
		return 0, 0, fmt.Errorf("finished at %d/%d trials", got, total)
	}
	return float64(eng.Iterations()) / elapsed.Seconds(), eng.ContextCount(), nil
}

func loopbackCell(workers, batch, total int, pipelined bool) (float64, error) {
	return loopbackCellSel(workers, batch, total, pipelined, nominal.NewEpsilonGreedy(0.10))
}

func loopbackCellSel(workers, batch, total int, pipelined bool, sel nominal.Selector, opts ...core.Option) (float64, error) {
	// The cell measures wire throughput; a full per-trial history would
	// make the engine the allocator hot spot instead.
	opts = append([]core.Option{core.WithoutHistory()}, opts...)
	eng, err := core.NewConcurrentTuner(benchAlgos(), sel, nil, 1, opts...)
	if err != nil {
		return 0, err
	}
	srv := NewServer(eng, WithTrialTarget(total))
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	measure := func(algo int, cfg param.Config) float64 {
		if algo == 0 {
			return 2
		}
		return 1 + cfg[0]
	}

	start := time.Now()
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	// Pipelined workers share one connection — that is the point of the
	// windowed pipe: many in-flight requests interleave on a single
	// stream and both ends coalesce bursts into single syscalls.
	// Lockstep workers keep a connection each.
	var shared *Client
	if pipelined {
		c, err := Dial(addr, WithPipeline(0))
		if err != nil {
			return 0, err
		}
		defer c.Close()
		shared = c
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := shared
			if c == nil {
				cc, err := Dial(addr)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				defer cc.Close()
				c = cc
			}
			w := &Worker{Client: c, Measure: measure, Batch: batch, Pipeline: pipelined}
			if _, err := w.Run(context.Background()); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, firstErr
	}
	if got := eng.Iterations(); got < total {
		return 0, fmt.Errorf("finished at %d/%d trials", got, total)
	}
	return float64(eng.Iterations()) / elapsed.Seconds(), nil
}
