package tuned

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
)

// TestCalibrateProtocol covers the TCalibrate round trip: factors are
// relative to the fleet-fastest reference, re-calibration updates them,
// and a new fastest worker lowers the baseline for everyone.
func TestCalibrateProtocol(t *testing.T) {
	_, addr := startServer(t, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if got := c.RefAlgo(); got != 0 {
		t.Fatalf("RefAlgo() = %d, want the default 0", got)
	}
	// First worker defines the baseline: factor 1 by construction.
	f, base, err := c.Calibrate(1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 || base != 2.0 {
		t.Fatalf("first Calibrate = (%g, %g), want (1, 2)", f, base)
	}
	// A 4×-slower worker gets factor 4 against that baseline.
	f, base, err = c.Calibrate(2, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	if f != 4 || base != 2.0 {
		t.Fatalf("slow Calibrate = (%g, %g), want (4, 2)", f, base)
	}
	// A faster newcomer lowers the baseline; its own factor is 1 and the
	// others' factors rise on their next report.
	f, base, err = c.Calibrate(3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 || base != 1.0 {
		t.Fatalf("fast Calibrate = (%g, %g), want (1, 1)", f, base)
	}
	if f, _, err = c.Calibrate(2, 8.0); err != nil || f != 8 {
		t.Fatalf("re-Calibrate after baseline drop = (%g, %v), want factor 8", f, err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Calibrated != 3 {
		t.Fatalf("Stats.Calibrated = %d, want 3", st.Calibrated)
	}
}

// TestCalibrateRejectsGarbage: zero worker IDs and non-positive or
// non-finite references are bad requests, not table entries.
func TestCalibrateRejectsGarbage(t *testing.T) {
	_, addr := startServer(t, nil)
	for _, tc := range []struct {
		worker uint64
		ref    float64
	}{
		{0, 1.0}, {1, 0}, {1, -3}, {1, math.Inf(1)}, {1, math.NaN()},
	} {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Calibrate(tc.worker, tc.ref); err == nil {
			t.Errorf("Calibrate(%d, %g) succeeded, want rejection", tc.worker, tc.ref)
		}
		c.Close()
	}
}

// TestCalibrateNormalizesReports: a worker-stamped CompleteN batch is
// divided by the worker's factor before reaching the selector, so a
// slow machine's costs land in fleet-normalized units.
func TestCalibrateNormalizesReports(t *testing.T) {
	srv, addr := startServer(t, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Calibrate(7, 1.0); err != nil { // baseline
		t.Fatal(err)
	}
	if _, _, err := c.Calibrate(9, 4.0); err != nil { // 4× slower
		t.Fatal(err)
	}
	c.SetWorker(9)
	lb, err := c.LeaseN(1)
	if err != nil || len(lb.Trials) != 1 {
		t.Fatalf("LeaseN: %v (%d trials)", err, len(lb.Trials))
	}
	// The slow worker measures 8.0 of wall time; normalized that is 2.0.
	if _, _, err := c.CompleteN(lb.Epoch, []core.TrialResult{{ID: lb.Trials[0].ID, Value: 8.0}}); err != nil {
		t.Fatal(err)
	}
	if _, _, v := srv.Engine().Best(); v != 2.0 {
		t.Fatalf("normalized best = %g, want 2.0", v)
	}
}

// TestCalibrateHeterogeneousFleet is the end-to-end bias property: two
// workers measure the same synthetic costs, but one runs on a 4×-slower
// "machine". Calibrated, both report in fleet units and the selector's
// per-arm record stays within the true cost range; the slow worker's
// reference probe lands as factor ≈ 4.
func TestCalibrateHeterogeneousFleet(t *testing.T) {
	eng, err := core.NewConcurrentTuner(testAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, WithTrialTarget(120))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// Establish the fleet baseline up front (a control client standing in
	// for the fastest machine: testMeasure(0, nil) = 3.0), so the slow
	// worker's first calibration already lands at its true factor instead
	// of depending on which worker happens to calibrate first.
	ctl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if _, _, err := ctl.Calibrate(99, 3.0); err != nil {
		t.Fatal(err)
	}

	slowdown := map[uint64]float64{1: 1.0, 2: 4.0}
	var wg sync.WaitGroup
	workers := make([]*Worker, 0, 2)
	for id, slow := range slowdown {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		w := &Worker{
			Client: c,
			Measure: func(algo int, cfg param.Config) float64 {
				return slow * testMeasure(algo, cfg)
			},
			Batch:          4,
			ID:             id,
			CalibrateEvery: 32,
		}
		workers = append(workers, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(context.Background())
		}()
	}
	wg.Wait()

	var slowW *Worker
	for _, w := range workers {
		ws := w.Stats()
		if ws.Calibrations == 0 {
			t.Fatalf("worker %d never calibrated: %+v", w.ID, ws)
		}
		if w.ID == 2 {
			slowW = w
		}
	}
	if f := slowW.Stats().Factor; f < 3.5 || f > 4.5 {
		t.Errorf("slow worker's factor = %g, want ≈ 4", f)
	}
	// testMeasure ranges over [3, 3.1] for arm 0 and [5, 5.1] for arm 1;
	// without calibration the slow worker would have pushed values up to
	// 4× that into the record. Normalized, the global best must sit in
	// the true arm-0 range.
	if _, _, v := eng.Best(); v < 2.5 || v > 3.2 {
		t.Errorf("fleet-normalized best = %g, want within arm 0's true range [3, 3.1]", v)
	}
}
