package tuned

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/nominal"
)

// TestDegradedModeReconnect kills the only server under a fallback-
// equipped worker, lets the worker measure against its local tuner,
// restarts the server over the same engine, and checks the locally
// learned delta is absorbed and leased operation resumes.
func TestDegradedModeReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("partition/reconnect session in -short mode")
	}
	const iters = 600
	algos, bank := e2eBank()
	eng, err := core.NewConcurrentTuner(algos, nominal.NewEpsilonGreedy(0.10), nil, 3,
		core.WithLeaseTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(eng, WithTrialTarget(iters))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv1.Serve(ln)

	c, err := Dial(addr,
		WithRetry(2, 2*time.Millisecond, 10*time.Millisecond),
		WithRequestTimeout(250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := &Worker{
		Client:  c,
		Measure: replayBank(bank, 200*time.Microsecond),
		Batch:   4,
		Fallback: &Fallback{
			Selector:   func() nominal.Selector { return nominal.NewEpsilonGreedy(0.10) },
			Seed:       17,
			ProbeEvery: 25 * time.Millisecond,
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := w.Run(context.Background())
		done <- err
	}()

	// Let the worker establish leased operation, then kill the server.
	for eng.Stats().Completed < 20 {
		time.Sleep(2 * time.Millisecond)
	}
	srv1.Close()

	// Partition: the retry budget (3 quick attempts) exhausts fast, and
	// the worker must keep measuring locally.
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats().DegradedTrials < 50 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never degraded: stats %+v", w.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Heal: a new server process over the same engine, same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(eng, WithTrialTarget(iters))
	go srv2.Serve(ln2)
	defer srv2.Close()

	if err := <-done; err != nil {
		t.Fatalf("worker Run = %v", err)
	}
	st := w.Stats()
	if st.Partitions < 1 || st.DegradedTrials == 0 {
		t.Fatalf("worker never entered degraded mode: %+v", st)
	}
	if st.Absorbed == 0 {
		t.Fatalf("no degraded observations absorbed on reconnect: %+v", st)
	}
	est := eng.Stats()
	if est.Absorbed != uint64(st.Absorbed) {
		t.Fatalf("engine absorbed %d, worker says %d", est.Absorbed, st.Absorbed)
	}
	// The absorbed delta is visible in the engine's counts, and the bank
	// winner holds across the partition.
	if winner := mostSelected(eng.Counts()); algos[winner].Name != "charlie" {
		t.Fatalf("winner after partition = %s, want charlie (counts %v)", algos[winner].Name, eng.Counts())
	}
}

// TestChaosSoakLoopback is the short chaos soak behind `make chaos`: a
// full loopback topology where every connection runs through the fault
// injection layer — latency, fragmentation, resets, corruption, and one
// partition long enough to force every worker through degraded mode —
// and the session must still finish with a consistent ledger and the
// bank's winner.
func TestChaosSoakLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	const (
		iters   = 500
		workers = 3
	)
	algos, bank := e2eBank()
	eng, err := core.NewConcurrentTuner(algos, nominal.NewEpsilonGreedy(0.10), nil, 5,
		core.WithLeaseTimeout(250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cnet := chaos.New(chaos.Config{
		Seed:         11,
		LatencyMax:   300 * time.Microsecond,
		FragmentProb: 0.15,
		ResetProb:    0.01,
		CorruptProb:  0.01,
	})
	// One fault domain for both sides: the server accepts through the
	// chaos network and every worker dials through it, so injections and
	// the partition hit each direction of each connection.
	ln, err := cnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, WithTrialTarget(iters), WithSessionCap(16), WithGlobalCap(48))
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	measure := replayBank(bank, 500*time.Microsecond)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	wstats := make([]*Worker, workers)
	for i := 0; i < workers; i++ {
		c, err := Dial(addr,
			WithDialer(cnet.DialTimeout),
			WithRetry(2, 2*time.Millisecond, 20*time.Millisecond),
			WithRequestTimeout(150*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		w := &Worker{
			Client:         c,
			Measure:        measure,
			Batch:          2 + i,
			HeartbeatEvery: 60 * time.Millisecond,
			Fallback: &Fallback{
				Selector:   func() nominal.Selector { return nominal.NewEpsilonGreedy(0.10) },
				Seed:       int64(100 + i),
				ProbeEvery: 25 * time.Millisecond,
			},
			ID: uint64(1 + i),
		}
		wstats[i] = w
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = w.Run(context.Background())
		}(i)
	}

	// Mid-run, partition the worker side long enough to outlast every
	// retry budget (3 attempts × ≤150ms timeouts ≪ 1.5s).
	for eng.Stats().Completed < iters/4 {
		time.Sleep(5 * time.Millisecond)
	}
	cnet.PartitionFor(1500 * time.Millisecond)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	degraded := 0
	for _, w := range wstats {
		if w.Stats().Partitions > 0 {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("partition did not force any worker into degraded mode")
	}
	// Ledger audit: every lease is accounted for exactly once. Leases
	// whose responses were eaten by a reset are still in flight until
	// their TTL; wait them out and reclaim.
	reclaim := time.Now().Add(3 * time.Second)
	for eng.Stats().InFlight > 0 {
		if time.Now().After(reclaim) {
			t.Fatalf("soak left %d leases in flight past their TTL", eng.Stats().InFlight)
		}
		eng.ReclaimExpired()
		time.Sleep(10 * time.Millisecond)
	}
	st := eng.Stats()
	if st.Leased != st.Completed+st.Failed+st.Expired {
		t.Fatalf("lease ledger does not balance: %+v", st)
	}
	if winner := mostSelected(eng.Counts()); algos[winner].Name != "charlie" {
		t.Fatalf("chaos winner = %s, want charlie (counts %v)", algos[winner].Name, eng.Counts())
	}
	cs := cnet.Stats()
	if cs.Resets+cs.Corruptions == 0 {
		t.Fatalf("soak injected no faults: %+v", cs)
	}
}
