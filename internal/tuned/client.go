package tuned

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/wire"
)

// Client defaults.
const (
	DefaultPoolSize       = 4
	DefaultRequestTimeout = 5 * time.Second
	DefaultRetries        = 6
	DefaultBackoffBase    = 25 * time.Millisecond
	DefaultBackoffMax     = time.Second

	// DefaultPipelineWindow is the in-flight request window WithPipeline
	// uses when given a non-positive value. It matches the server's own
	// pipelineWindow so one client can saturate its connection without
	// tripping the server's protection limit.
	DefaultPipelineWindow = 32
)

// ErrClosed is returned by requests on a closed client.
var ErrClosed = errors.New("tuned: client closed")

// errPipeTimeout fails a pipelined connection whose response did not
// arrive within the request timeout.
var errPipeTimeout = errors.New("tuned: pipelined request timed out")

// RemoteError is a request-level error the server answered explicitly
// (wire.ErrorResp). Config mismatches and bad requests are permanent:
// the client does not retry them.
type RemoteError struct {
	Code int
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("tuned: server error %d: %s", e.Code, e.Msg)
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithPoolSize bounds the number of idle pooled connections (default
// DefaultPoolSize). Concurrent requests beyond the pool dial extra
// connections that are closed instead of pooled when they return.
// Ignored while pipelining is on: a pipelined client multiplexes every
// request over one connection.
func WithPoolSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithPipeline multiplexes all requests over a single connection with
// up to window of them in flight at once, matched to their responses by
// correlation ID, so a request no longer waits for its predecessor's
// round trip. window ≤ 0 means DefaultPipelineWindow. Requires a v3
// server; against an older handshake the client silently falls back to
// pooled lockstep connections.
func WithPipeline(window int) ClientOption {
	return func(c *Client) {
		if window <= 0 {
			window = DefaultPipelineWindow
		}
		c.pwindow = window
	}
}

// WithRequestTimeout sets the per-attempt deadline covering dial, send
// and receive (default DefaultRequestTimeout).
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithRetry sets the reconnect policy: up to retries additional
// attempts per request. The sleep before attempt k is drawn uniformly
// from (0, min(base·2^(k-1), max)] — "full jitter", so N workers whose
// connections died together (a server restart, a healed partition) do
// not redial in lockstep. Requests are safe to retry by protocol
// design: completion is idempotent per trial ID, and a LeaseN whose
// response was lost only costs leases that expire on their deadlines.
func WithRetry(retries int, base, max time.Duration) ClientOption {
	return func(c *Client) {
		if retries >= 0 {
			c.retries = retries
		}
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithExpectedHash pins the config hash the server must present; zero
// (the default) accepts any server and pins its hash on first contact.
func WithExpectedHash(h uint32) ClientOption {
	return func(c *Client) { c.hash.Store(h) }
}

// WithClientName labels this client in the server's handshake (purely
// diagnostic).
func WithClientName(name string) ClientOption {
	return func(c *Client) { c.name = name }
}

// WithTenant routes this client's sessions to a named tenant on a
// multi-tenant server. Empty (the default) is the "default" tenant —
// the behavior of every client that predates tenancy, and the only
// tenant a single-engine server runs.
func WithTenant(name string) ClientOption {
	return func(c *Client) { c.tenant = name }
}

// WithWorker stamps completion reports with a worker identity, so the
// server can apply that worker's calibrated speed factor. Zero (the
// default) reports anonymously with factor 1.
func WithWorker(id uint64) ClientOption {
	return func(c *Client) { c.worker.Store(id) }
}

// WithFeatures sets the client's sticky feature vector: LeaseN attaches
// it to every lease request, so a contextual server routes this
// client's trials to the matching per-context selector (completions
// route by trial ID — no echo needed). Nil (the default) leaves
// requests feature-less — the global context. Servers without
// contextual routing ignore the field entirely.
func WithFeatures(f []float64) ClientOption {
	return func(c *Client) { c.SetFeatures(f) }
}

// WithDialer replaces the TCP dialer, letting tests and soak runs route
// connections through a fault-injection layer (chaos.Network.DialTimeout
// has this exact signature).
func WithDialer(dial func(network, addr string, timeout time.Duration) (net.Conn, error)) ClientOption {
	return func(c *Client) {
		if dial != nil {
			c.dialFn = dial
		}
	}
}

// Client is a client of one tuning server. It is safe for concurrent
// use; every method retries transient transport failures with
// exponential backoff and fresh connections, so a server restart within
// the retry budget is invisible to callers except through the changed
// epoch.
//
// By default each request occupies one pooled connection for its full
// round trip. With WithPipeline, all requests share one connection and
// overlap on the wire — the mode the hot path (LeaseN/CompleteN/FailN)
// is designed for.
type Client struct {
	addr   string
	name   string
	tenant string

	poolSize    int
	pwindow     int // 0 = lockstep pool; >0 = pipelined window
	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	dialFn      func(network, addr string, timeout time.Duration) (net.Conn, error)

	pool    chan *clientConn
	pmu     sync.Mutex  // guards pconn
	pconn   *clientConn // the shared pipelined connection
	proto   atomic.Uint32
	hash    atomic.Uint32 // expected/pinned config hash (0 = unpinned)
	epoch   atomic.Int64  // most recent epoch seen in a handshake
	algos   atomic.Pointer[[]string]
	ttlMS   atomic.Int64
	refAlgo atomic.Int64  // calibration reference algorithm (handshake)
	worker  atomic.Uint64 // worker identity stamped into reports
	feats   atomic.Pointer[[]float64]
	closed  atomic.Bool
}

// clientConn is one connection with its handshake result.
type clientConn struct {
	conn  net.Conn
	br    *bufio.Reader
	rbuf  []byte // frame read buffer, reused across lockstep requests
	epoch int64
	proto byte
	pipe  *pipe // non-nil on the shared pipelined connection
}

// Dial connects to a tuning server, performing an eager handshake so a
// config mismatch or dead address fails construction rather than the
// first request.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{
		addr:        addr,
		poolSize:    DefaultPoolSize,
		timeout:     DefaultRequestTimeout,
		retries:     DefaultRetries,
		backoffBase: DefaultBackoffBase,
		backoffMax:  DefaultBackoffMax,
		dialFn:      net.DialTimeout,
	}
	for _, o := range opts {
		o(c)
	}
	c.pool = make(chan *clientConn, c.poolSize)
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	if c.pipelined() {
		cc.pipe = newPipe(cc, c.pwindow)
		c.pconn = cc
	} else {
		c.put(cc)
	}
	return c, nil
}

// dial opens and handshakes one connection.
func (c *Client) dial() (*clientConn, error) {
	conn, err := c.dialFn("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(c.timeout))
	defer conn.SetDeadline(time.Time{})
	br := bufio.NewReaderSize(conn, 64<<10)
	hello := wire.Hello{Proto: wire.Version, Hash: c.hash.Load(), Name: c.name, Tenant: c.tenant}
	if err := wire.WriteMsg(conn, wire.THello, &hello); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ == wire.TError {
		defer conn.Close()
		var e wire.ErrorResp
		if err := e.DecodeFrom(payload); err != nil {
			return nil, err
		}
		return nil, &RemoteError{Code: e.Code, Msg: e.Msg}
	}
	if typ != wire.THelloAck {
		conn.Close()
		return nil, fmt.Errorf("tuned: handshake answered with %s", typ)
	}
	var ack wire.HelloAck
	if err := ack.DecodeFrom(payload); err != nil {
		conn.Close()
		return nil, err
	}
	// Pin the hash on first contact; a later server presenting another
	// hash is a different run and must be refused, not silently joined.
	if !c.hash.CompareAndSwap(0, ack.Hash) && c.hash.Load() != ack.Hash {
		conn.Close()
		return nil, &RemoteError{Code: wire.CodeConfigMismatch,
			Msg: fmt.Sprintf("server now runs config %08x, client pinned %08x", ack.Hash, c.hash.Load())}
	}
	proto := byte(min(ack.Proto, wire.Version))
	if proto < 1 {
		proto = 1
	}
	algos := append([]string(nil), ack.Algos...)
	c.algos.Store(&algos)
	c.epoch.Store(ack.Epoch)
	c.ttlMS.Store(ack.LeaseTTLMS)
	c.refAlgo.Store(int64(ack.RefAlgo))
	c.proto.Store(uint32(proto))
	return &clientConn{conn: conn, br: br, epoch: ack.Epoch, proto: proto}, nil
}

// protoByte is the protocol version negotiated in the most recent
// handshake (0 before first contact — Dial handshakes eagerly, so
// callers never see that).
func (c *Client) protoByte() byte { return byte(c.proto.Load()) }

// pipelined reports whether requests go through the shared pipelined
// connection. It requires both the option and a v3 handshake; against
// an older server the client falls back to pooled lockstep.
func (c *Client) pipelined() bool {
	return c.pwindow > 0 && c.protoByte() >= 3
}

// get returns a pooled connection or dials a new one.
func (c *Client) get() (*clientConn, error) {
	select {
	case cc := <-c.pool:
		return cc, nil
	default:
		return c.dial()
	}
}

// put returns a connection to the pool, closing it when the pool is
// full.
func (c *Client) put(cc *clientConn) {
	if c.closed.Load() {
		cc.conn.Close()
		return
	}
	select {
	case c.pool <- cc:
	default:
		cc.conn.Close()
	}
}

// Close closes the client, its pooled connections, and the pipelined
// connection if any. In-flight requests on borrowed connections finish;
// their connections are closed on return.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.pmu.Lock()
	if c.pconn != nil {
		c.pconn.pipe.fail(ErrClosed)
		c.pconn = nil
	}
	c.pmu.Unlock()
	for {
		select {
		case cc := <-c.pool:
			cc.conn.Close()
		default:
			return nil
		}
	}
}

// Epoch returns the session epoch from the most recent handshake. A
// change between two calls means the server restarted in between.
func (c *Client) Epoch() int64 { return c.epoch.Load() }

// Algos returns the server's algorithm roster (index = algorithm index
// in leased trials).
func (c *Client) Algos() []string {
	p := c.algos.Load()
	if p == nil {
		return nil
	}
	return append([]string(nil), (*p)...)
}

// LeaseTTL returns the server's lease deadline duration (zero when
// expiry is disabled); workers should heartbeat well inside it.
func (c *Client) LeaseTTL() time.Duration {
	return time.Duration(c.ttlMS.Load()) * time.Millisecond
}

// RefAlgo returns the server's calibration reference algorithm index
// from the most recent handshake.
func (c *Client) RefAlgo() int { return int(c.refAlgo.Load()) }

// SetWorker stamps subsequent CompleteN reports with a worker identity.
//
// Deprecated: mutating a shared client mid-flight races with its other
// users. Configure the identity at construction with WithWorker, or
// take a per-worker view with Session(SessionWorker(id)).
func (c *Client) SetWorker(id uint64) { c.worker.Store(id) }

// SetFeatures replaces the client's sticky feature vector (see
// WithFeatures); nil reverts to feature-less global requests.
//
// Deprecated: mutating a shared client mid-flight races with its other
// users. Configure the vector at construction with WithFeatures, or
// take a per-context view with Session(SessionFeatures(f)).
func (c *Client) SetFeatures(f []float64) {
	if f == nil {
		c.feats.Store(nil)
		return
	}
	cp := append([]float64(nil), f...)
	c.feats.Store(&cp)
}

// Features returns a copy of the sticky feature vector (nil when
// unset).
//
// Deprecated: read the vector off a Session handle instead.
func (c *Client) Features() []float64 {
	p := c.feats.Load()
	if p == nil {
		return nil
	}
	return append([]float64(nil), (*p)...)
}

// Session is an immutable per-worker view of a Client: a worker
// identity and a feature vector fixed at construction, sharing the
// client's connections, retry policy and handshake state. Two sessions
// of one client never race each other's identity the way the deprecated
// SetWorker/SetFeatures mutators could.
type Session struct {
	c      *Client
	worker uint64
	feats  []float64
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// SessionWorker sets the worker identity stamped into the session's
// completion reports.
func SessionWorker(id uint64) SessionOption {
	return func(s *Session) { s.worker = id }
}

// SessionFeatures sets the feature vector attached to the session's
// lease requests (nil = the global context).
func SessionFeatures(f []float64) SessionOption {
	return func(s *Session) { s.feats = append([]float64(nil), f...) }
}

// Session derives an immutable per-worker handle. Without options it
// snapshots the client's current worker identity and feature vector.
func (c *Client) Session(opts ...SessionOption) *Session {
	s := &Session{c: c, worker: c.worker.Load()}
	if p := c.feats.Load(); p != nil {
		s.feats = append([]float64(nil), (*p)...)
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Client returns the client this session is a view of.
func (s *Session) Client() *Client { return s.c }

// Worker returns the session's worker identity.
func (s *Session) Worker() uint64 { return s.worker }

// Features returns a copy of the session's feature vector (nil when
// unset).
func (s *Session) Features() []float64 {
	return append([]float64(nil), s.feats...)
}

// LeaseN leases up to n trials under the session's feature vector.
func (s *Session) LeaseN(n int) (LeaseBatch, error) {
	return s.c.leaseN(s.feats, n)
}

// CompleteN reports measured values under the session's worker
// identity; see Client.CompleteN.
func (s *Session) CompleteN(epoch int64, results []core.TrialResult) (applied, dropped []uint64, err error) {
	return s.c.completeN(s.worker, epoch, results)
}

// FailN reports measurement failures; see Client.FailN.
func (s *Session) FailN(epoch int64, fails []core.TrialFailure) (applied, dropped []uint64, err error) {
	return s.c.FailN(epoch, fails)
}

// Heartbeat extends the session's leases; see Client.Heartbeat.
func (s *Session) Heartbeat(epoch int64, ids []uint64) ([]uint64, error) {
	return s.c.Heartbeat(epoch, ids)
}

// roundTrip sends one request and reads its response, retrying
// transport failures on fresh connections with full-jitter exponential
// backoff. Server-side errors (wire.TError) are permanent and returned
// as *RemoteError without retry.
func (c *Client) roundTrip(reqType wire.Type, req wire.Payload, respType wire.Type, resp wire.Payload) error {
	return c.roundTripRetries(c.retries, reqType, req, respType, resp)
}

// roundTripRetries is roundTrip with an explicit retry budget; the
// degraded worker probes reconnection with a budget of zero.
func (c *Client) roundTripRetries(retries int, reqType wire.Type, req wire.Payload, respType wire.Type, resp wire.Payload) error {
	var lastErr error
	backoff := c.backoffBase
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			// Full jitter: sleep a uniform fraction of the doubling
			// ceiling rather than the ceiling itself, so a herd of
			// workers reconnecting after one outage spreads out instead
			// of hammering the server in lockstep.
			time.Sleep(time.Duration(rand.Int63n(int64(backoff))) + 1)
			backoff *= 2
			if backoff > c.backoffMax {
				backoff = c.backoffMax
			}
		}
		if c.closed.Load() {
			return ErrClosed
		}
		var err error
		if c.pipelined() {
			err = c.pipeDo(reqType, req, respType, resp)
		} else {
			err = c.poolDo(reqType, req, respType, resp)
		}
		if err == nil {
			return nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			return err
		}
		if errors.Is(err, ErrClosed) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("tuned: %s to %s failed after %d attempts: %w", reqType, c.addr, retries+1, lastErr)
}

// poolDo runs one lockstep exchange on a pooled connection.
func (c *Client) poolDo(reqType wire.Type, req wire.Payload, respType wire.Type, resp wire.Payload) error {
	cc, err := c.get()
	if err != nil {
		return err
	}
	err = c.attempt(cc, reqType, req, respType, resp)
	if err == nil {
		c.put(cc)
		return nil
	}
	cc.conn.Close()
	return err
}

// attempt performs one request/response exchange on one connection.
func (c *Client) attempt(cc *clientConn, reqType wire.Type, req wire.Payload, respType wire.Type, resp wire.Payload) error {
	cc.conn.SetDeadline(time.Now().Add(c.timeout))
	defer cc.conn.SetDeadline(time.Time{})
	if err := wire.WriteFrame(cc.conn, cc.proto, reqType, 0, req); err != nil {
		return err
	}
	typ, _, payload, rbuf, err := wire.ReadFrameBuf(cc.br, cc.rbuf)
	cc.rbuf = rbuf
	if err != nil {
		return err
	}
	return decodeResp(typ, payload, respType, resp)
}

// decodeResp interprets one response frame against the expected type,
// turning TError answers into *RemoteError.
func decodeResp(typ wire.Type, payload []byte, respType wire.Type, resp wire.Payload) error {
	if typ == wire.TError {
		var e wire.ErrorResp
		if err := e.DecodeFrom(payload); err != nil {
			return err
		}
		return &RemoteError{Code: e.Code, Msg: e.Msg}
	}
	if typ != respType {
		return fmt.Errorf("tuned: answered with %s, want %s", typ, respType)
	}
	if resp == nil {
		return nil
	}
	return resp.DecodeFrom(payload)
}

// pipeDo runs one exchange over the shared pipelined connection,
// dropping the connection on transport failure so the next attempt
// redials.
func (c *Client) pipeDo(reqType wire.Type, req wire.Payload, respType wire.Type, resp wire.Payload) error {
	p, err := c.getPipe()
	if err != nil {
		return err
	}
	err = p.do(c.timeout, reqType, req, respType, resp)
	if err != nil {
		var re *RemoteError
		if !errors.As(err, &re) {
			c.dropPipe(p)
		}
	}
	return err
}

// getPipe returns the live pipelined connection, dialing one when none
// exists or the previous one failed.
func (c *Client) getPipe() (*pipe, error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.pconn != nil && c.pconn.pipe.alive() {
		return c.pconn.pipe, nil
	}
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	cc.pipe = newPipe(cc, c.pwindow)
	c.pconn = cc
	return cc.pipe, nil
}

// dropPipe discards a failed pipelined connection (unless a concurrent
// request already replaced it).
func (c *Client) dropPipe(p *pipe) {
	c.pmu.Lock()
	if c.pconn != nil && c.pconn.pipe == p {
		c.pconn = nil
	}
	c.pmu.Unlock()
	p.fail(errors.New("tuned: pipelined connection dropped"))
}

// pipe multiplexes concurrent requests over one connection. Each
// request takes a window slot, registers its response struct under a
// fresh correlation ID, writes its frame, and waits; a single reader
// goroutine decodes responses straight into the registered structs in
// whatever order the server answers. Any transport error fails every
// in-flight request at once — the callers' retry loops redial.
type pipe struct {
	cc     *clientConn
	window chan struct{}

	wmu   sync.Mutex    // serializes frame writes
	bw    *bufio.Writer // request buffer over the connection
	wpend atomic.Int32  // writers committed to entering wmu

	mu      sync.Mutex
	corr    uint16
	pending map[uint16]*pcall
	err     error // sticky; set once by fail

	done chan struct{} // closed by fail
}

// pcall is one in-flight pipelined request.
type pcall struct {
	respType wire.Type
	resp     wire.Payload
	ch       chan error // buffered; receives exactly one result
}

func newPipe(cc *clientConn, window int) *pipe {
	p := &pipe{
		cc:      cc,
		window:  make(chan struct{}, window),
		bw:      bufio.NewWriterSize(cc.conn, 64<<10),
		pending: make(map[uint16]*pcall),
		done:    make(chan struct{}),
	}
	go p.readLoop()
	return p
}

// alive reports whether the pipe can still take requests.
func (p *pipe) alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err == nil
}

// do runs one exchange: slot, register, write, wait.
func (p *pipe) do(timeout time.Duration, reqType wire.Type, req wire.Payload, respType wire.Type, resp wire.Payload) error {
	select {
	case p.window <- struct{}{}:
	case <-p.done:
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.err
	}
	defer func() { <-p.window }()

	call := &pcall{respType: respType, resp: resp, ch: make(chan error, 1)}
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	// Correlation IDs cycle through 1..65535; 0 stays reserved for
	// unsolicited frames. The window is far smaller than the ID space,
	// so a live ID can never be reissued before its response lands.
	p.corr++
	if p.corr == 0 {
		p.corr = 1
	}
	corr := p.corr
	p.pending[corr] = call
	p.mu.Unlock()

	// Coalesced write: frames buffer under the mutex and flush only
	// when no other writer is committed to entering it, so overlapping
	// requests (a report racing the next lease) share one syscall.
	p.wpend.Add(1)
	p.wmu.Lock()
	p.cc.conn.SetWriteDeadline(time.Now().Add(timeout))
	err := wire.WriteFrame(p.bw, p.cc.proto, reqType, corr, req)
	if p.wpend.Add(-1) <= 0 {
		if ferr := p.bw.Flush(); err == nil {
			err = ferr
		}
	}
	p.wmu.Unlock()
	if err != nil {
		p.fail(err)
		return err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-call.ch:
		return err
	case <-timer.C:
		// Failing the whole pipe on one timeout is deliberate: responses
		// arrive in server order, so a stuck request means everything
		// behind it is stuck too.
		p.fail(errPipeTimeout)
		return errPipeTimeout
	}
}

// readLoop decodes responses into their registered structs until the
// connection dies.
func (p *pipe) readLoop() {
	var buf []byte
	for {
		typ, corr, payload, nbuf, err := wire.ReadFrameBuf(p.cc.br, buf)
		if err != nil {
			p.fail(err)
			return
		}
		buf = nbuf
		p.mu.Lock()
		call := p.pending[corr]
		delete(p.pending, corr)
		p.mu.Unlock()
		if call == nil {
			p.fail(fmt.Errorf("tuned: response with unknown correlation ID %d", corr))
			return
		}
		// Decode on this goroutine: payload aliases the reused frame
		// buffer and must not outlive this iteration.
		call.ch <- decodeResp(typ, payload, call.respType, call.resp)
	}
}

// fail closes the connection and delivers err to every in-flight
// request. Idempotent; only the first error sticks.
func (p *pipe) fail(err error) {
	p.mu.Lock()
	if p.err != nil {
		p.mu.Unlock()
		return
	}
	p.err = err
	calls := p.pending
	p.pending = make(map[uint16]*pcall)
	close(p.done)
	p.mu.Unlock()
	p.cc.conn.Close()
	for _, call := range calls {
		call.ch <- err
	}
}

// LeaseBatch is the result of one LeaseN round trip. Epoch stamps the
// server process that issued the trials and must be echoed when they
// are completed or failed.
type LeaseBatch struct {
	Trials   []core.Trial
	Epoch    int64
	Done     bool
	Retry    time.Duration // backoff hint when Trials is empty
	Draining bool          // the server is shutting down gracefully
	// SuggestMax, when nonzero, is the server's advisory batch ceiling:
	// peers are starving behind this session's holdings, and capping
	// the next lease request at this size restores fairness sooner than
	// waiting for the server to clamp it.
	SuggestMax int
}

// LeaseN leases up to n trials in one round trip, attaching the sticky
// feature vector (if any) so a contextual server can route the lease.
func (c *Client) LeaseN(n int) (LeaseBatch, error) {
	return c.leaseN(c.Features(), n)
}

// LeaseNFor leases up to n trials under an explicit feature vector,
// overriding the sticky one for this request. Nil features ask for the
// global context.
func (c *Client) LeaseNFor(features []float64, n int) (LeaseBatch, error) {
	return c.leaseN(features, n)
}

// leaseN is the shared lease path: packed frames against a v3 server,
// the JSON family otherwise.
func (c *Client) leaseN(features []float64, n int) (LeaseBatch, error) {
	if c.protoByte() >= 3 {
		var resp wire.PackedTrials
		if err := c.roundTrip(wire.TLeaseP, &wire.PackedLeaseReq{N: n, Features: features}, wire.TTrialsP, &resp); err != nil {
			return LeaseBatch{}, err
		}
		lb := LeaseBatch{
			Epoch:      resp.Epoch,
			Done:       resp.Done,
			Draining:   resp.Draining,
			Retry:      time.Duration(resp.RetryMS) * time.Millisecond,
			SuggestMax: resp.SuggestMax,
		}
		if len(resp.Trials) > 0 {
			lb.Trials = make([]core.Trial, 0, len(resp.Trials))
		}
		for _, wt := range resp.Trials {
			tr := core.Trial{
				ID:          wt.ID,
				Algo:        wt.Algo,
				Config:      param.Config(wt.Config),
				Speculative: wt.Speculative,
				Pinned:      wt.Pinned,
			}
			if wt.DeadlineMS != 0 {
				tr.Deadline = time.UnixMilli(wt.DeadlineMS)
			}
			lb.Trials = append(lb.Trials, tr)
		}
		return lb, nil
	}
	var resp wire.LeaseNResp
	if err := c.roundTrip(wire.TLeaseN, &wire.LeaseNReq{N: n, Features: features}, wire.TTrials, &resp); err != nil {
		return LeaseBatch{}, err
	}
	lb := LeaseBatch{
		Epoch:      resp.Epoch,
		Done:       resp.Done,
		Retry:      time.Duration(resp.RetryMS) * time.Millisecond,
		Draining:   resp.Draining,
		SuggestMax: resp.SuggestMax,
	}
	for _, wt := range resp.Trials {
		tr := core.Trial{
			ID:          wt.ID,
			Algo:        wt.Algo,
			Config:      param.Config(wt.Config),
			Speculative: wt.Speculative,
			Pinned:      wt.Pinned,
		}
		if wt.DeadlineMS != 0 {
			tr.Deadline = time.UnixMilli(wt.DeadlineMS)
		}
		lb.Trials = append(lb.Trials, tr)
	}
	return lb, nil
}

// CompleteN reports a batch of measured values for trials leased under
// epoch, returning the trial IDs applied and dropped. Dropped IDs are
// not failures: the engine had already charged those trials (expired
// lease, duplicate report, or older epoch).
func (c *Client) CompleteN(epoch int64, results []core.TrialResult) (applied, dropped []uint64, err error) {
	return c.completeN(c.worker.Load(), epoch, results)
}

func (c *Client) completeN(worker uint64, epoch int64, results []core.TrialResult) (applied, dropped []uint64, err error) {
	// No feature vector on results: a contextual server routes
	// completions by trial ID through its route table, so echoing the
	// sticky vector here would only fatten the hottest wire message.
	if c.protoByte() >= 3 {
		req := wire.PackedCompleteReq{Epoch: epoch, Worker: worker, Results: make([]wire.PackedResult, len(results))}
		for i, r := range results {
			req.Results[i] = wire.PackedResult{ID: r.ID, Value: r.Value}
		}
		var ack wire.PackedAck
		if err := c.roundTrip(wire.TCompleteP, &req, wire.TAckP, &ack); err != nil {
			return nil, nil, err
		}
		return ack.Applied, ack.Dropped, nil
	}
	req := wire.CompleteNReq{Epoch: epoch, Worker: worker, Results: make([]wire.Result, len(results))}
	for i, r := range results {
		req.Results[i] = wire.Result{ID: r.ID, Value: r.Value}
	}
	var ack wire.AckResp
	if err := c.roundTrip(wire.TCompleteN, &req, wire.TAck, &ack); err != nil {
		return nil, nil, err
	}
	return ack.Applied, ack.Dropped, nil
}

// wireFailKind maps a guard failure kind to its packed wire code.
func wireFailKind(k guard.Kind) uint8 {
	switch k {
	case guard.Panic:
		return wire.FailPanic
	case guard.Timeout:
		return wire.FailTimeout
	case guard.Invalid:
		return wire.FailInvalid
	default:
		return wire.FailOther
	}
}

// FailN reports a batch of measurement failures for trials leased under
// epoch.
func (c *Client) FailN(epoch int64, fails []core.TrialFailure) (applied, dropped []uint64, err error) {
	if c.protoByte() >= 3 {
		req := wire.PackedFailReq{Epoch: epoch, Fails: make([]wire.PackedFail, len(fails))}
		for i, f := range fails {
			wf := wire.PackedFail{ID: f.ID, Kind: wireFailKind(f.Failure.Kind), Penalty: f.Failure.Penalty}
			if f.Failure.Err != nil {
				wf.Msg = f.Failure.Err.Error()
			}
			req.Fails[i] = wf
		}
		var ack wire.PackedAck
		if err := c.roundTrip(wire.TFailP, &req, wire.TAckP, &ack); err != nil {
			return nil, nil, err
		}
		return ack.Applied, ack.Dropped, nil
	}
	req := wire.FailNReq{Epoch: epoch, Fails: make([]wire.Fail, len(fails))}
	for i, f := range fails {
		wf := wire.Fail{ID: f.ID, Kind: f.Failure.Kind.String(), Penalty: f.Failure.Penalty}
		if f.Failure.Err != nil {
			wf.Msg = f.Failure.Err.Error()
		}
		req.Fails[i] = wf
	}
	var ack wire.AckResp
	if err := c.roundTrip(wire.TFailN, &req, wire.TAck, &ack); err != nil {
		return nil, nil, err
	}
	return ack.Applied, ack.Dropped, nil
}

// Heartbeat extends the leases of the given trials, returning the IDs
// still alive. Trials missing from the result were reclaimed (or
// belong to a dead epoch) and should be abandoned.
func (c *Client) Heartbeat(epoch int64, ids []uint64) ([]uint64, error) {
	var resp wire.HeartbeatResp
	if err := c.roundTrip(wire.THeartbeat, &wire.HeartbeatReq{Epoch: epoch, IDs: ids}, wire.THeartbeatAck, &resp); err != nil {
		return nil, err
	}
	return resp.Alive, nil
}

// Ping probes reachability with a single attempt — no retries, no
// backoff — so a degraded worker can poll for a healed partition
// without burning its retry budget per probe. Any error means "still
// unreachable".
func (c *Client) Ping() error {
	var resp wire.StatsResp
	return c.roundTripRetries(0, wire.TStats, nil, wire.TStatsAck, &resp)
}

// Absorb folds a batch of degraded-mode observations into the server's
// selector. (worker, seq) deduplicate retries: resending a batch whose
// ack was lost is safe, the server applies each (worker, seq) at most
// once and answers duplicate=true thereafter. Returns how many
// observations the server applied (0 with duplicate=true means an
// earlier attempt already applied them).
func (c *Client) Absorb(worker, seq uint64, obs []nominal.Observation) (applied int, duplicate bool, err error) {
	req := wire.AbsorbReq{Worker: worker, Seq: seq, Obs: make([]wire.Obs, len(obs))}
	for i, o := range obs {
		req.Obs[i] = wire.Obs{Arm: o.Arm, Value: o.Value, Failed: o.Failed}
	}
	var ack wire.AbsorbAck
	if err := c.roundTrip(wire.TAbsorb, &req, wire.TAbsorbAck, &ack); err != nil {
		return 0, false, err
	}
	return ack.Applied, ack.Duplicate, nil
}

// Calibrate reports a worker's reference-probe time (the wall time of
// measuring the server's RefAlgo at its initial configuration) and
// returns the speed factor the server will now divide this worker's
// costs by, plus the fleet baseline the factor is relative to.
func (c *Client) Calibrate(worker uint64, ref float64) (factor, baseline float64, err error) {
	var ack wire.CalibrateAck
	if err := c.roundTrip(wire.TCalibrate, &wire.CalibrateReq{Worker: worker, Ref: ref}, wire.TCalibrateAck, &ack); err != nil {
		return 0, 0, err
	}
	return ack.Factor, ack.Baseline, nil
}

// Best returns the server's globally best observation so far.
func (c *Client) Best() (wire.BestResp, error) {
	var resp wire.BestResp
	err := c.roundTrip(wire.TBest, nil, wire.TBestAck, &resp)
	return resp, err
}

// Stats returns this client's tenant's engine counters and selection
// counts.
func (c *Client) Stats() (wire.StatsResp, error) {
	var resp wire.StatsResp
	err := c.roundTrip(wire.TStats, nil, wire.TStatsAck, &resp)
	return resp, err
}

// Tenant returns the tenant this client's sessions are routed to ("" =
// the default tenant).
func (c *Client) Tenant() string { return c.tenant }

// Tenants returns the server's aggregate view: one row per registered
// tenant plus fleet totals. Best and Stats stay scoped to this client's
// own tenant; this is the cross-tenant overview.
func (c *Client) Tenants() (wire.TenantsResp, error) {
	var resp wire.TenantsResp
	err := c.roundTrip(wire.TTenants, nil, wire.TTenantsAck, &resp)
	return resp, err
}
