package tuned

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/wire"
)

// Client defaults.
const (
	DefaultPoolSize       = 4
	DefaultRequestTimeout = 5 * time.Second
	DefaultRetries        = 6
	DefaultBackoffBase    = 25 * time.Millisecond
	DefaultBackoffMax     = time.Second
)

// ErrClosed is returned by requests on a closed client.
var ErrClosed = errors.New("tuned: client closed")

// RemoteError is a request-level error the server answered explicitly
// (wire.ErrorResp). Config mismatches and bad requests are permanent:
// the client does not retry them.
type RemoteError struct {
	Code int
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("tuned: server error %d: %s", e.Code, e.Msg)
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithPoolSize bounds the number of idle pooled connections (default
// DefaultPoolSize). Concurrent requests beyond the pool dial extra
// connections that are closed instead of pooled when they return.
func WithPoolSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithRequestTimeout sets the per-attempt deadline covering dial, send
// and receive (default DefaultRequestTimeout).
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithRetry sets the reconnect policy: up to retries additional
// attempts per request. The sleep before attempt k is drawn uniformly
// from (0, min(base·2^(k-1), max)] — "full jitter", so N workers whose
// connections died together (a server restart, a healed partition) do
// not redial in lockstep. Requests are safe to retry by protocol
// design: completion is idempotent per trial ID, and a LeaseN whose
// response was lost only costs leases that expire on their deadlines.
func WithRetry(retries int, base, max time.Duration) ClientOption {
	return func(c *Client) {
		if retries >= 0 {
			c.retries = retries
		}
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithExpectedHash pins the config hash the server must present; zero
// (the default) accepts any server and pins its hash on first contact.
func WithExpectedHash(h uint32) ClientOption {
	return func(c *Client) { c.hash.Store(h) }
}

// WithClientName labels this client in the server's handshake (purely
// diagnostic).
func WithClientName(name string) ClientOption {
	return func(c *Client) { c.name = name }
}

// WithTenant routes this client's sessions to a named tenant on a
// multi-tenant server. Empty (the default) is the "default" tenant —
// the behavior of every client that predates tenancy, and the only
// tenant a single-engine server runs.
func WithTenant(name string) ClientOption {
	return func(c *Client) { c.tenant = name }
}

// WithFeatures sets the client's sticky feature vector: LeaseN attaches
// it to every lease request, so a contextual server routes this
// client's trials to the matching per-context selector (completions
// route by trial ID — no echo needed). Nil (the default) leaves
// requests feature-less — the global context. Servers without
// contextual routing ignore the field entirely.
func WithFeatures(f []float64) ClientOption {
	return func(c *Client) { c.SetFeatures(f) }
}

// WithDialer replaces the TCP dialer, letting tests and soak runs route
// connections through a fault-injection layer (chaos.Network.DialTimeout
// has this exact signature).
func WithDialer(dial func(network, addr string, timeout time.Duration) (net.Conn, error)) ClientOption {
	return func(c *Client) {
		if dial != nil {
			c.dialFn = dial
		}
	}
}

// Client is a connection-pooled client of one tuning server. It is safe
// for concurrent use; every method retries transient transport failures
// with exponential backoff and fresh connections, so a server restart
// within the retry budget is invisible to callers except through the
// changed epoch.
type Client struct {
	addr   string
	name   string
	tenant string

	poolSize    int
	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	dialFn      func(network, addr string, timeout time.Duration) (net.Conn, error)

	pool    chan *clientConn
	hash    atomic.Uint32 // expected/pinned config hash (0 = unpinned)
	epoch   atomic.Int64  // most recent epoch seen in a handshake
	algos   atomic.Pointer[[]string]
	ttlMS   atomic.Int64
	refAlgo atomic.Int64  // calibration reference algorithm (handshake)
	worker  atomic.Uint64 // worker identity stamped into reports
	feats   atomic.Pointer[[]float64]
	closed  atomic.Bool
}

// clientConn is one pooled connection with its handshake result.
type clientConn struct {
	conn  net.Conn
	epoch int64
}

// Dial connects to a tuning server, performing an eager handshake so a
// config mismatch or dead address fails construction rather than the
// first request.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{
		addr:        addr,
		poolSize:    DefaultPoolSize,
		timeout:     DefaultRequestTimeout,
		retries:     DefaultRetries,
		backoffBase: DefaultBackoffBase,
		backoffMax:  DefaultBackoffMax,
		dialFn:      net.DialTimeout,
	}
	for _, o := range opts {
		o(c)
	}
	c.pool = make(chan *clientConn, c.poolSize)
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.put(cc)
	return c, nil
}

// dial opens and handshakes one connection.
func (c *Client) dial() (*clientConn, error) {
	conn, err := c.dialFn("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(c.timeout))
	defer conn.SetDeadline(time.Time{})
	hello := wire.Hello{Proto: wire.Version, Hash: c.hash.Load(), Name: c.name, Tenant: c.tenant}
	if err := wire.WriteMsg(conn, wire.THello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ == wire.TError {
		defer conn.Close()
		var e wire.ErrorResp
		if err := wire.Unmarshal(payload, &e); err != nil {
			return nil, err
		}
		return nil, &RemoteError{Code: e.Code, Msg: e.Msg}
	}
	if typ != wire.THelloAck {
		conn.Close()
		return nil, fmt.Errorf("tuned: handshake answered with %s", typ)
	}
	var ack wire.HelloAck
	if err := wire.Unmarshal(payload, &ack); err != nil {
		conn.Close()
		return nil, err
	}
	// Pin the hash on first contact; a later server presenting another
	// hash is a different run and must be refused, not silently joined.
	if !c.hash.CompareAndSwap(0, ack.Hash) && c.hash.Load() != ack.Hash {
		conn.Close()
		return nil, &RemoteError{Code: wire.CodeConfigMismatch,
			Msg: fmt.Sprintf("server now runs config %08x, client pinned %08x", ack.Hash, c.hash.Load())}
	}
	algos := append([]string(nil), ack.Algos...)
	c.algos.Store(&algos)
	c.epoch.Store(ack.Epoch)
	c.ttlMS.Store(ack.LeaseTTLMS)
	c.refAlgo.Store(int64(ack.RefAlgo))
	return &clientConn{conn: conn, epoch: ack.Epoch}, nil
}

// get returns a pooled connection or dials a new one.
func (c *Client) get() (*clientConn, error) {
	select {
	case cc := <-c.pool:
		return cc, nil
	default:
		return c.dial()
	}
}

// put returns a connection to the pool, closing it when the pool is
// full.
func (c *Client) put(cc *clientConn) {
	if c.closed.Load() {
		cc.conn.Close()
		return
	}
	select {
	case c.pool <- cc:
	default:
		cc.conn.Close()
	}
}

// Close closes the client and its pooled connections. In-flight
// requests on borrowed connections finish; their connections are closed
// on return.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	for {
		select {
		case cc := <-c.pool:
			cc.conn.Close()
		default:
			return nil
		}
	}
}

// Epoch returns the session epoch from the most recent handshake. A
// change between two calls means the server restarted in between.
func (c *Client) Epoch() int64 { return c.epoch.Load() }

// Algos returns the server's algorithm roster (index = algorithm index
// in leased trials).
func (c *Client) Algos() []string {
	p := c.algos.Load()
	if p == nil {
		return nil
	}
	return append([]string(nil), (*p)...)
}

// LeaseTTL returns the server's lease deadline duration (zero when
// expiry is disabled); workers should heartbeat well inside it.
func (c *Client) LeaseTTL() time.Duration {
	return time.Duration(c.ttlMS.Load()) * time.Millisecond
}

// RefAlgo returns the server's calibration reference algorithm index
// from the most recent handshake.
func (c *Client) RefAlgo() int { return int(c.refAlgo.Load()) }

// SetWorker stamps subsequent CompleteN reports with a worker identity,
// so the server can apply that worker's calibrated speed factor. Zero
// (the default) reports anonymously with factor 1.
func (c *Client) SetWorker(id uint64) { c.worker.Store(id) }

// SetFeatures replaces the client's sticky feature vector (see
// WithFeatures); nil reverts to feature-less global requests. Safe to
// call concurrently with requests — a worker whose workload shifts
// mid-run just calls this and subsequent leases route to the new
// context.
func (c *Client) SetFeatures(f []float64) {
	if f == nil {
		c.feats.Store(nil)
		return
	}
	cp := append([]float64(nil), f...)
	c.feats.Store(&cp)
}

// Features returns a copy of the sticky feature vector (nil when
// unset).
func (c *Client) Features() []float64 {
	p := c.feats.Load()
	if p == nil {
		return nil
	}
	return append([]float64(nil), (*p)...)
}

// roundTrip sends one request and reads its response, retrying
// transport failures on fresh connections with full-jitter exponential
// backoff. Server-side errors (wire.TError) are permanent and returned
// as *RemoteError without retry.
func (c *Client) roundTrip(reqType wire.Type, req any, respType wire.Type, resp any) error {
	return c.roundTripRetries(c.retries, reqType, req, respType, resp)
}

// roundTripRetries is roundTrip with an explicit retry budget; the
// degraded worker probes reconnection with a budget of zero.
func (c *Client) roundTripRetries(retries int, reqType wire.Type, req any, respType wire.Type, resp any) error {
	var lastErr error
	backoff := c.backoffBase
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			// Full jitter: sleep a uniform fraction of the doubling
			// ceiling rather than the ceiling itself, so a herd of
			// workers reconnecting after one outage spreads out instead
			// of hammering the server in lockstep.
			time.Sleep(time.Duration(rand.Int63n(int64(backoff))) + 1)
			backoff *= 2
			if backoff > c.backoffMax {
				backoff = c.backoffMax
			}
		}
		if c.closed.Load() {
			return ErrClosed
		}
		cc, err := c.get()
		if err != nil {
			var re *RemoteError
			if errors.As(err, &re) {
				return err
			}
			lastErr = err
			continue
		}
		err = c.attempt(cc, reqType, req, respType, resp)
		if err == nil {
			c.put(cc)
			return nil
		}
		cc.conn.Close()
		var re *RemoteError
		if errors.As(err, &re) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("tuned: %s to %s failed after %d attempts: %w", reqType, c.addr, retries+1, lastErr)
}

// attempt performs one request/response exchange on one connection.
func (c *Client) attempt(cc *clientConn, reqType wire.Type, req any, respType wire.Type, resp any) error {
	cc.conn.SetDeadline(time.Now().Add(c.timeout))
	defer cc.conn.SetDeadline(time.Time{})
	if err := wire.WriteMsg(cc.conn, reqType, req); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(cc.conn)
	if err != nil {
		return err
	}
	if typ == wire.TError {
		var e wire.ErrorResp
		if err := wire.Unmarshal(payload, &e); err != nil {
			return err
		}
		return &RemoteError{Code: e.Code, Msg: e.Msg}
	}
	if typ != respType {
		return fmt.Errorf("tuned: %s answered with %s, want %s", reqType, typ, respType)
	}
	if resp == nil {
		return nil
	}
	return wire.Unmarshal(payload, resp)
}

// LeaseBatch is the result of one LeaseN round trip. Epoch stamps the
// server process that issued the trials and must be echoed when they
// are completed or failed.
type LeaseBatch struct {
	Trials   []core.Trial
	Epoch    int64
	Done     bool
	Retry    time.Duration // backoff hint when Trials is empty
	Draining bool          // the server is shutting down gracefully
}

// LeaseN leases up to n trials in one round trip, attaching the sticky
// feature vector (if any) so a contextual server can route the lease.
func (c *Client) LeaseN(n int) (LeaseBatch, error) {
	return c.LeaseNFor(c.Features(), n)
}

// LeaseNFor leases up to n trials under an explicit feature vector,
// overriding the sticky one for this request. Nil features ask for the
// global context.
func (c *Client) LeaseNFor(features []float64, n int) (LeaseBatch, error) {
	var resp wire.LeaseNResp
	if err := c.roundTrip(wire.TLeaseN, wire.LeaseNReq{N: n, Features: features}, wire.TTrials, &resp); err != nil {
		return LeaseBatch{}, err
	}
	lb := LeaseBatch{Epoch: resp.Epoch, Done: resp.Done, Retry: time.Duration(resp.RetryMS) * time.Millisecond, Draining: resp.Draining}
	for _, wt := range resp.Trials {
		tr := core.Trial{
			ID:          wt.ID,
			Algo:        wt.Algo,
			Config:      param.Config(wt.Config),
			Speculative: wt.Speculative,
			Pinned:      wt.Pinned,
		}
		if wt.DeadlineMS != 0 {
			tr.Deadline = time.UnixMilli(wt.DeadlineMS)
		}
		lb.Trials = append(lb.Trials, tr)
	}
	return lb, nil
}

// CompleteN reports a batch of measured values for trials leased under
// epoch, returning the trial IDs applied and dropped. Dropped IDs are
// not failures: the engine had already charged those trials (expired
// lease, duplicate report, or older epoch).
func (c *Client) CompleteN(epoch int64, results []core.TrialResult) (applied, dropped []uint64, err error) {
	// No feature vector on results: a contextual server routes
	// completions by trial ID through its route table, so echoing the
	// sticky vector here would only fatten the hottest wire message.
	req := wire.CompleteNReq{Epoch: epoch, Worker: c.worker.Load(), Results: make([]wire.Result, len(results))}
	for i, r := range results {
		req.Results[i] = wire.Result{ID: r.ID, Value: r.Value}
	}
	var ack wire.AckResp
	if err := c.roundTrip(wire.TCompleteN, req, wire.TAck, &ack); err != nil {
		return nil, nil, err
	}
	return ack.Applied, ack.Dropped, nil
}

// FailN reports a batch of measurement failures for trials leased under
// epoch.
func (c *Client) FailN(epoch int64, fails []core.TrialFailure) (applied, dropped []uint64, err error) {
	req := wire.FailNReq{Epoch: epoch, Fails: make([]wire.Fail, len(fails))}
	for i, f := range fails {
		wf := wire.Fail{ID: f.ID, Kind: f.Failure.Kind.String(), Penalty: f.Failure.Penalty}
		if f.Failure.Err != nil {
			wf.Msg = f.Failure.Err.Error()
		}
		req.Fails[i] = wf
	}
	var ack wire.AckResp
	if err := c.roundTrip(wire.TFailN, req, wire.TAck, &ack); err != nil {
		return nil, nil, err
	}
	return ack.Applied, ack.Dropped, nil
}

// Heartbeat extends the leases of the given trials, returning the IDs
// still alive. Trials missing from the result were reclaimed (or
// belong to a dead epoch) and should be abandoned.
func (c *Client) Heartbeat(epoch int64, ids []uint64) ([]uint64, error) {
	var resp wire.HeartbeatResp
	if err := c.roundTrip(wire.THeartbeat, wire.HeartbeatReq{Epoch: epoch, IDs: ids}, wire.THeartbeatAck, &resp); err != nil {
		return nil, err
	}
	return resp.Alive, nil
}

// Ping probes reachability with a single attempt — no retries, no
// backoff — so a degraded worker can poll for a healed partition
// without burning its retry budget per probe. Any error means "still
// unreachable".
func (c *Client) Ping() error {
	var resp wire.StatsResp
	return c.roundTripRetries(0, wire.TStats, nil, wire.TStatsAck, &resp)
}

// Absorb folds a batch of degraded-mode observations into the server's
// selector. (worker, seq) deduplicate retries: resending a batch whose
// ack was lost is safe, the server applies each (worker, seq) at most
// once and answers duplicate=true thereafter. Returns how many
// observations the server applied (0 with duplicate=true means an
// earlier attempt already applied them).
func (c *Client) Absorb(worker, seq uint64, obs []nominal.Observation) (applied int, duplicate bool, err error) {
	req := wire.AbsorbReq{Worker: worker, Seq: seq, Obs: make([]wire.Obs, len(obs))}
	for i, o := range obs {
		req.Obs[i] = wire.Obs{Arm: o.Arm, Value: o.Value, Failed: o.Failed}
	}
	var ack wire.AbsorbAck
	if err := c.roundTrip(wire.TAbsorb, req, wire.TAbsorbAck, &ack); err != nil {
		return 0, false, err
	}
	return ack.Applied, ack.Duplicate, nil
}

// Calibrate reports a worker's reference-probe time (the wall time of
// measuring the server's RefAlgo at its initial configuration) and
// returns the speed factor the server will now divide this worker's
// costs by, plus the fleet baseline the factor is relative to.
func (c *Client) Calibrate(worker uint64, ref float64) (factor, baseline float64, err error) {
	var ack wire.CalibrateAck
	if err := c.roundTrip(wire.TCalibrate, wire.CalibrateReq{Worker: worker, Ref: ref}, wire.TCalibrateAck, &ack); err != nil {
		return 0, 0, err
	}
	return ack.Factor, ack.Baseline, nil
}

// Best returns the server's globally best observation so far.
func (c *Client) Best() (wire.BestResp, error) {
	var resp wire.BestResp
	err := c.roundTrip(wire.TBest, nil, wire.TBestAck, &resp)
	return resp, err
}

// Stats returns this client's tenant's engine counters and selection
// counts.
func (c *Client) Stats() (wire.StatsResp, error) {
	var resp wire.StatsResp
	err := c.roundTrip(wire.TStats, nil, wire.TStatsAck, &resp)
	return resp, err
}

// Tenant returns the tenant this client's sessions are routed to ("" =
// the default tenant).
func (c *Client) Tenant() string { return c.tenant }

// Tenants returns the server's aggregate view: one row per registered
// tenant plus fleet totals. Best and Stats stay scoped to this client's
// own tenant; this is the cross-tenant overview.
func (c *Client) Tenants() (wire.TenantsResp, error) {
	var resp wire.TenantsResp
	err := c.roundTrip(wire.TTenants, nil, wire.TTenantsAck, &resp)
	return resp, err
}
