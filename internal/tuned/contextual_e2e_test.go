package tuned

import (
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/ctxtune"
	"repro/internal/nominal"
	"repro/internal/wire"
)

// The server's structural extension interface must match what
// ctxtune.Engine actually exports — this is the only place the two
// packages meet, so pin it at compile time.
var (
	_ Engine           = (*ctxtune.Engine)(nil)
	_ contextualEngine = (*ctxtune.Engine)(nil)
)

// Two-regime wire model, mirroring the ctxtune engine tests: features
// [1] are the cheap class (algorithm a wins, 1 vs 3), features [100]
// the dear class (algorithm b wins, 9 vs 30). A global tuner must
// compromise; a contextual server must learn both winners.
var (
	wireCheap = []float64{1}
	wireDear  = []float64{100}
)

func wireClassCost(f []float64, algo int) float64 {
	if f[0] < 50 {
		if algo == 0 {
			return 1
		}
		return 3
	}
	if algo == 1 {
		return 9
	}
	return 30
}

func startContextualServer(t *testing.T) (*ctxtune.Engine, string) {
	t.Helper()
	eng, err := ctxtune.New(ctxtune.Config{
		Algos: []core.Algorithm{{Name: "a"}, {Name: "b"}},
		Selector: func() nominal.Selector {
			return &nominal.EpsilonGreedy{Eps: 0.10, RecencyWindow: 25}
		},
		Seed:        7,
		Partitioner: ctxtune.NewTree(1, 32, 1.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return eng, ln.Addr().String()
}

// TestContextualWireRouting drives mixed two-class traffic through real
// TCP clients and checks the server discovers both contexts and serves
// each class its own winner.
func TestContextualWireRouting(t *testing.T) {
	eng, addr := startContextualServer(t)

	cheap, err := Dial(addr, WithFeatures(wireCheap))
	if err != nil {
		t.Fatal(err)
	}
	defer cheap.Close()
	dear, err := Dial(addr, WithFeatures(wireDear))
	if err != nil {
		t.Fatal(err)
	}
	defer dear.Close()

	drive := func(c *Client, f []float64) {
		lb, err := c.LeaseN(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range lb.Trials {
			if _, _, err := c.CompleteN(lb.Epoch, []core.TrialResult{
				{ID: tr.ID, Value: wireClassCost(f, tr.Algo)},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 300; i++ {
		drive(cheap, wireCheap)
		drive(dear, wireDear)
	}

	st, err := cheap.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Contexts < 2 {
		t.Fatalf("server reports %d contexts, want >= 2 (split never happened)", st.Contexts)
	}
	if st.Iterations != 600 {
		t.Errorf("Iterations = %d, want 600", st.Iterations)
	}

	// Majority pick per class after learning.
	for _, tc := range []struct {
		c    *Client
		f    []float64
		want int
	}{{cheap, wireCheap, 0}, {dear, wireDear, 1}} {
		picks := make(map[int]int)
		for i := 0; i < 20; i++ {
			lb, err := tc.c.LeaseN(1)
			if err != nil {
				t.Fatal(err)
			}
			picks[lb.Trials[0].Algo]++
			tc.c.CompleteN(lb.Epoch, []core.TrialResult{
				{ID: lb.Trials[0].ID, Value: wireClassCost(tc.f, lb.Trials[0].Algo)},
			})
		}
		if picks[tc.want] <= picks[1-tc.want] {
			t.Errorf("class %v picks = %v, want majority on %d", tc.f, picks, tc.want)
		}
	}

	// An explicit per-request vector overrides the sticky one.
	lb, err := cheap.LeaseNFor(wireDear, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ctx := eng.Contexts(); len(ctx) == 0 {
		t.Fatal("engine lost its contexts")
	}
	cheap.CompleteN(lb.Epoch, []core.TrialResult{{ID: lb.Trials[0].ID, Value: 9}})
}

// TestV1RawFrameClientOnContextualServer is the compatibility leg: a
// protocol-1 client — v1-stamped frames, no Features field anywhere —
// must tune against a contextual server's global context, with every
// reply stamped v1.
func TestV1RawFrameClientOnContextualServer(t *testing.T) {
	eng, addr := startContextualServer(t)

	c := dialV1(t, addr)
	defer c.close()
	ack := c.hello(wire.Hello{Proto: 1, Name: "v1-worker"})
	if ack.Proto != 1 {
		t.Fatalf("ack.Proto = %d for a v1 session", ack.Proto)
	}

	lresp := c.leaseN(4)
	if len(lresp.Trials) == 0 {
		t.Fatal("v1 client leased no trials from contextual server")
	}
	creq := wire.CompleteNReq{Epoch: lresp.Epoch}
	for _, tr := range lresp.Trials {
		creq.Results = append(creq.Results, wire.Result{ID: tr.ID, Value: 2.0})
	}
	cack := c.completeN(creq)
	if len(cack.Applied) != len(creq.Results) {
		t.Fatalf("v1 completions applied=%v dropped=%v", cack.Applied, cack.Dropped)
	}

	// Feature-less traffic lands on the global tuner, creating no
	// contexts.
	if n := eng.ContextCount(); n != 0 {
		t.Errorf("v1 traffic materialized %d contexts, want 0", n)
	}
	if it := eng.Iterations(); it != len(creq.Results) {
		t.Errorf("Iterations = %d, want %d", it, len(creq.Results))
	}
}
