package tuned

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
)

// TestHeartbeatDropsReclaimedLease pins the worker's dropped-lease
// path: when a batch overruns the lease TTL and the heartbeat interval
// is too slow to extend in time, the heartbeat response reports the
// not-yet-measured trials dead and measureBatch skips them instead of
// wasting the measurement.
func TestHeartbeatDropsReclaimedLease(t *testing.T) {
	_, addr := startServer(t, []core.EngineOption{core.WithLeaseTimeout(40 * time.Millisecond)})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var calls atomic.Int32
	w := &Worker{
		Client: c,
		Measure: func(algo int, cfg param.Config) float64 {
			calls.Add(1)
			// Overrun the TTL by far: by the time this returns, the
			// heartbeat (which fires after the leases already expired)
			// has learned both leases are dead.
			time.Sleep(250 * time.Millisecond)
			return 1
		},
		// One heartbeat at t=80ms — after the 40ms TTL, so the extension
		// comes too late and the server's answer marks the leases dead.
		HeartbeatEvery: 80 * time.Millisecond,
	}
	lb, err := c.LeaseN(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Trials) != 2 {
		t.Fatalf("leased %d trials, want 2", len(lb.Trials))
	}
	results, fails, abandoned := w.measureBatch(context.Background(), lb)
	if abandoned {
		t.Fatal("measureBatch reported abandoned without cancellation")
	}
	// The first trial was already measuring when the heartbeat learned
	// of the reclamation; the second must have been skipped.
	if got := calls.Load(); got != 1 {
		t.Fatalf("measure called %d times, want 1 (second trial skipped as dropped)", got)
	}
	if len(results)+len(fails) != 1 {
		t.Fatalf("batch produced %d results and %d fails, want 1 total", len(results), len(fails))
	}
	// Reporting the overrun measurement is harmless: the server drops it.
	applied, dropped, err := c.CompleteN(lb.Epoch, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 0 || len(dropped) != 1 {
		t.Fatalf("expired completion: applied %v dropped %v, want all dropped", applied, dropped)
	}
}

// TestAbsorbDedup pins the (worker, seq) idempotency of the absorb
// endpoint: a retried sequence number is acknowledged as a duplicate
// and never double-applied.
func TestAbsorbDedup(t *testing.T) {
	srv, addr := startServer(t, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obs := []nominal.Observation{{Arm: 0, Value: 1}, {Arm: 1, Value: 2}, {Arm: 0, Value: 3, Failed: true}}
	applied, dup, err := c.Absorb(77, 1, obs)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 || dup {
		t.Fatalf("Absorb(seq=1) = (%d, %v), want (3, false)", applied, dup)
	}
	// A lost-ack retry resends the same seq: must be a no-op duplicate.
	applied, dup, err = c.Absorb(77, 1, obs)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 || !dup {
		t.Fatalf("retried Absorb(seq=1) = (%d, %v), want (0, true)", applied, dup)
	}
	// The next chunk advances the seq and applies.
	applied, dup, err = c.Absorb(77, 2, obs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 || dup {
		t.Fatalf("Absorb(seq=2) = (%d, %v), want (1, false)", applied, dup)
	}
	// Another worker's seq space is independent.
	if applied, _, err = c.Absorb(78, 1, obs[:2]); err != nil || applied != 2 {
		t.Fatalf("Absorb(worker=78) = (%d, %v), want 2 applied", applied, err)
	}
	if got := srv.Engine().Stats().Absorbed; got != 6 {
		t.Fatalf("engine absorbed %d observations, want 6", got)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Absorbed != 6 {
		t.Fatalf("wire StatsResp.Absorbed = %d, want 6", st.Absorbed)
	}
}

// TestSessionCap checks one connection cannot hoard leases past the
// per-session cap and that the cap is returned as trials complete.
func TestSessionCap(t *testing.T) {
	_, addr := startServer(t, nil, WithSessionCap(2))
	c, err := Dial(addr, WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	lb, err := c.LeaseN(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Trials) != 2 {
		t.Fatalf("leased %d trials under cap 2, want 2", len(lb.Trials))
	}
	// At the cap: an empty busy response with a retry hint.
	busy, err := c.LeaseN(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(busy.Trials) != 0 || busy.Retry <= 0 {
		t.Fatalf("over-cap lease = %d trials, retry %v; want busy response", len(busy.Trials), busy.Retry)
	}
	// Completing one trial frees one slot.
	if _, _, err := c.CompleteN(lb.Epoch, []core.TrialResult{{ID: lb.Trials[0].ID, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	again, err := c.LeaseN(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Trials) != 1 {
		t.Fatalf("leased %d trials after freeing one slot, want 1", len(again.Trials))
	}
}

// TestGlobalCap checks the server-wide in-flight bound across sessions.
func TestGlobalCap(t *testing.T) {
	_, addr := startServer(t, nil, WithGlobalCap(3))
	c1, err := Dial(addr, WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr, WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	lb, err := c1.LeaseN(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Trials) != 3 {
		t.Fatalf("leased %d trials under global cap 3, want 3", len(lb.Trials))
	}
	busy, err := c2.LeaseN(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(busy.Trials) != 0 || busy.Retry <= 0 {
		t.Fatalf("second session leased %d trials at global cap, retry %v; want busy", len(busy.Trials), busy.Retry)
	}
}

// TestDrain checks the graceful shutdown path: no new leases while
// draining, in-flight completions still accepted, final checkpoint
// written, and the listener closed at the end.
func TestDrain(t *testing.T) {
	dir := t.TempDir()
	eng, err := core.NewConcurrentTuner(testAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 1,
		core.WithCheckpoint(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := Dial(ln.Addr().String(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	lb, err := c.LeaseN(1)
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(2 * time.Second) }()
	// Wait for the drain flag, then check leases are refused.
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	busy, err := c.LeaseN(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(busy.Trials) != 0 || !busy.Draining {
		t.Fatalf("lease during drain = %d trials, draining %v; want draining busy", len(busy.Trials), busy.Draining)
	}
	// The in-flight trial can still complete; that unblocks the drain.
	if _, _, err := c.CompleteN(lb.Epoch, []core.TrialResult{{ID: lb.Trials[0].ID, Value: 4.5}}); err != nil {
		t.Fatal(err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v", err)
	}
	if st := eng.Stats(); st.InFlight != 0 {
		t.Fatalf("drained with %d in flight", st.InFlight)
	}
	// The final checkpoint must make the completed iteration durable:
	// a resume with no journal replay still sees it.
	rt, err := core.ResumeConcurrent(dir, 0, testAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Iterations() != 1 {
		t.Fatalf("resumed at iteration %d after drain checkpoint, want 1", rt.Iterations())
	}
	// Second Drain is a no-op.
	if err := srv.Drain(time.Second); err != nil {
		t.Fatalf("second Drain = %v", err)
	}
}

// TestWorkerIdleWaitJitter pins the satellite contract: the idle wait
// is jittered within (retry/2, retry] of the effective hint.
func TestWorkerIdleWaitJitter(t *testing.T) {
	w := &Worker{IdleRetry: 8 * time.Millisecond}
	for i := 0; i < 100; i++ {
		d := w.idleWait(0)
		if d <= 4*time.Millisecond || d > 8*time.Millisecond {
			t.Fatalf("idleWait(0) = %v, want in (4ms, 8ms]", d)
		}
		if d = w.idleWait(20 * time.Millisecond); d <= 10*time.Millisecond || d > 20*time.Millisecond {
			t.Fatalf("idleWait(20ms) = %v, want in (10ms, 20ms]", d)
		}
	}
	// Default floor when neither hint nor IdleRetry is set.
	if d := (&Worker{}).idleWait(0); d <= 0 || d > 2*time.Millisecond {
		t.Fatalf("default idleWait = %v, want in (0, 2ms]", d)
	}
}
