package tuned

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
)

// The loopback end-to-end scenario: a full distributed tuning session
// over real TCP on localhost, with every production failure mode
// injected at least once —
//
//   - 16 remote workers with mixed batch sizes drive the server;
//   - one worker is killed mid-lease (its client closed with trials
//     outstanding) and its leases are reclaimed as timeouts;
//   - the server process is killed mid-run and a new one resumes the
//     same session from snapshot + journal on the same address, behind
//     the workers' backs;
//
// and the distributed run must still converge to the same winning
// algorithm as an in-process sequential tuner and an in-process RunPool
// over the same replayed sample bank.

// e2eBank is a deterministic per-arm sample bank with one clear winner
// (arm 2) and near-tied losers — replayed values, so the only source of
// divergence between runs is the trial scheduling itself.
func e2eBank() (algos []core.Algorithm, bank [][]float64) {
	algos = []core.Algorithm{
		{Name: "alpha"},
		{Name: "bravo"},
		{Name: "charlie"},
		{Name: "delta"},
		{Name: "echo"},
		{Name: "foxtrot"},
	}
	bank = [][]float64{
		{11.0, 11.4, 10.8, 11.2},
		{9.5, 9.9, 9.7, 9.6},
		{2.0, 2.2, 2.1, 2.05}, // the winner
		{8.8, 9.1, 8.9, 9.0},
		{12.5, 12.2, 12.8, 12.4},
		{10.1, 10.3, 9.9, 10.2},
	}
	return algos, bank
}

// replayBank cycles deterministically through each arm's samples,
// shared (mutex-protected) across all workers of a run, with an
// optional fixed per-call sleep to give the run real wall-clock extent.
func replayBank(bank [][]float64, sleep time.Duration) core.Measure {
	var mu sync.Mutex
	visits := make([]int, len(bank))
	return func(algo int, _ param.Config) float64 {
		if sleep > 0 {
			time.Sleep(sleep)
		}
		mu.Lock()
		defer mu.Unlock()
		v := bank[algo][visits[algo]%len(bank[algo])]
		visits[algo]++
		return v
	}
}

func mostSelected(counts []int) int {
	best := 0
	for i, n := range counts {
		if n > counts[best] {
			best = i
		}
	}
	return best
}

func TestLoopbackE2EKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("full distributed session in -short mode")
	}
	const (
		iters    = 1600
		workers  = 16
		seed     = 7
		leaseTTL = 250 * time.Millisecond
	)
	algos, bank := e2eBank()

	// Reference 1: the paper's sequential tuner.
	seq, err := core.New(algos, nominal.NewEpsilonGreedy(0.10), nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(iters, replayBank(bank, 0))
	seqWinner := mostSelected(seq.Counts())
	if algos[seqWinner].Name != "charlie" {
		t.Fatalf("sequential winner = %s, the bank says charlie", algos[seqWinner].Name)
	}

	// Reference 2: the in-process worker pool on the same bank.
	pool, err := core.NewConcurrentTuner(algos, nominal.NewEpsilonGreedy(0.10), nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	pool.RunPool(4, iters, replayBank(bank, 0))
	poolWinner := mostSelected(pool.Counts())

	// The distributed session, checkpointed for the mid-run restart.
	dir := t.TempDir()
	eng, err := core.NewConcurrentTuner(algos, nominal.NewEpsilonGreedy(0.10), nil, seed,
		core.WithCheckpoint(dir, 200), core.WithLeaseTimeout(leaseTTL))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, WithTrialTarget(iters))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	measure := replayBank(bank, time.Millisecond)
	clientOpts := []ClientOption{WithRetry(40, 10*time.Millisecond, 200*time.Millisecond)}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		batch := 1 + i%8 // mixed batch sizes 1..8
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, clientOpts...)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			w := &Worker{Client: c, Measure: measure, Batch: batch, HeartbeatEvery: 50 * time.Millisecond}
			if _, err := w.Run(context.Background()); err != nil {
				errs <- err
			}
		}()
	}

	// The chaos controller: restart the server once a third of the run
	// is journaled, then kill a victim worker mid-lease.
	var (
		srv2      *Server
		finalEng  = eng
		restarted = make(chan struct{})
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for eng.Iterations() < iters/3 {
			time.Sleep(5 * time.Millisecond)
		}
		// Kill the server. Workers stall on backoff while we resume the
		// session from its snapshot + journal on the same address.
		srv.Close()
		eng2, err := core.ResumeConcurrent(dir, 200, algos, nominal.NewEpsilonGreedy(0.10), nil, seed,
			core.WithLeaseTimeout(leaseTTL))
		if err != nil {
			errs <- err
			close(restarted)
			return
		}
		if eng2.Iterations() < iters/3-1 {
			t.Errorf("resumed engine at iteration %d, journal should carry at least %d", eng2.Iterations(), iters/3-1)
		}
		srv2 = NewServer(eng2, WithTrialTarget(iters))
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			errs <- err
			close(restarted)
			return
		}
		finalEng = eng2
		go srv2.Serve(ln2)
		close(restarted)

		// Kill one worker mid-lease: lease a batch on a throwaway client
		// and walk away. The resumed server must reclaim the leases as
		// timeouts once the TTL passes without heartbeats.
		victim, err := Dial(addr, clientOpts...)
		if err != nil {
			errs <- err
			return
		}
		lb, err := victim.LeaseN(4)
		if err != nil {
			errs <- err
			return
		}
		if len(lb.Trials) == 0 {
			errs <- err
			return
		}
		victim.Close()
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	<-restarted
	if srv2 == nil {
		t.Fatal("server was never restarted")
	}
	defer srv2.Close()

	// Drain the victim's abandoned leases.
	deadline := time.Now().Add(5 * time.Second)
	for finalEng.InFlight() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d leases still in flight after drain", finalEng.InFlight())
		}
		time.Sleep(20 * time.Millisecond)
		finalEng.ReclaimExpired()
	}

	st := finalEng.Stats()
	if st.Expired == 0 {
		t.Fatalf("no expired leases — the killed worker was never reclaimed: %+v", st)
	}
	if finalEng.Iterations() < iters {
		t.Fatalf("session finished at %d iterations, want >= %d", finalEng.Iterations(), iters)
	}

	// The acceptance criterion: same winner as both in-process runs.
	distWinner := mostSelected(finalEng.Counts())
	if distWinner != seqWinner {
		t.Errorf("distributed winner %s != sequential winner %s (counts %v)",
			algos[distWinner].Name, algos[seqWinner].Name, finalEng.Counts())
	}
	if distWinner != poolWinner {
		t.Errorf("distributed winner %s != RunPool winner %s",
			algos[distWinner].Name, algos[poolWinner].Name)
	}
	if algo, _, val := finalEng.Best(); algo != distWinner || val > 2.0 {
		t.Errorf("best = (%s, %v), want charlie at its bank minimum 2.0", algos[algo].Name, val)
	}
}
