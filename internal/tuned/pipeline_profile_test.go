package tuned

import (
	"os"
	"testing"
)

// TestProfilePipelinedCell is a profiling harness, not a regression
// test: it runs one pipelined loopback cell so `go test -cpuprofile`
// can see where the hot path spends its time. Skipped unless
// ATUNE_PROFILE=1.
func TestProfilePipelinedCell(t *testing.T) {
	if os.Getenv("ATUNE_PROFILE") != "1" {
		t.Skip("set ATUNE_PROFILE=1 to run the profiling cell")
	}
	lps, err := loopbackCell(4, 16, 400000, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%.0f leases/sec", lps)
}
