package tuned

import (
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/nominal"
)

// startEngineServer is startServer but hands back the engine too, for
// tests that assert on final engine state.
func startEngineServer(t *testing.T, sopts ...ServerOption) (*core.ConcurrentTuner, string) {
	t.Helper()
	eng, err := core.NewConcurrentTuner(testAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, sopts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return eng, ln.Addr().String()
}

// TestPipelinedReorderParity leases a batch over a pipelined connection
// and reports the trials back one at a time, in reverse lease order,
// from concurrent goroutines — so completions land out of order
// relative to the leases and to each other. The engine must end in the
// same state lockstep reporting reaches: every completion applied,
// nothing dropped, nothing left in flight.
func TestPipelinedReorderParity(t *testing.T) {
	const n = 8

	run := func(t *testing.T, opts ...ClientOption) (iters int) {
		eng, addr := startEngineServer(t)
		c, err := Dial(addr, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()

		lb, err := c.LeaseN(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(lb.Trials) != n {
			t.Fatalf("leased %d trials, want %d", len(lb.Trials), n)
		}

		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := n - 1; i >= 0; i-- {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tr := lb.Trials[i]
				res := []core.TrialResult{{ID: tr.ID, Value: testMeasure(tr.Algo, tr.Config)}}
				applied, dropped, err := c.CompleteN(lb.Epoch, res)
				if err != nil {
					errs[i] = err
					return
				}
				if len(applied) != 1 || len(dropped) != 0 {
					t.Errorf("trial %d: applied=%v dropped=%v", tr.ID, applied, dropped)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		st := eng.Stats()
		if st.InFlight != 0 {
			t.Fatalf("in-flight = %d after all reports, want 0", st.InFlight)
		}
		return eng.Iterations()
	}

	lockstep := run(t)
	pipelined := run(t, WithPipeline(0))
	if lockstep != n || pipelined != n {
		t.Fatalf("iterations: lockstep=%d pipelined=%d, want %d", lockstep, pipelined, n)
	}
}

// TestPipelinedCorrelation interleaves requests of different types from
// many goroutines on one pipelined connection. Every response must
// decode as its request's type — a correlation mix-up surfaces as a
// type-mismatch decode error or a wrong-shape answer.
func TestPipelinedCorrelation(t *testing.T) {
	_, addr := startEngineServer(t)
	c, err := Dial(addr, WithPipeline(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 25; i++ {
				switch rng.Intn(3) {
				case 0:
					lb, err := c.LeaseN(1)
					if err != nil {
						t.Errorf("LeaseN: %v", err)
						return
					}
					for _, tr := range lb.Trials {
						res := []core.TrialResult{{ID: tr.ID, Value: testMeasure(tr.Algo, tr.Config)}}
						if _, _, err := c.CompleteN(lb.Epoch, res); err != nil {
							t.Errorf("CompleteN: %v", err)
							return
						}
					}
				case 1:
					if _, err := c.Stats(); err != nil {
						t.Errorf("Stats: %v", err)
						return
					}
				case 2:
					if _, err := c.Best(); err != nil {
						t.Errorf("Best: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRebalanceClampsHoarder starves one session behind the global cap
// while another hoards it, then checks the server pushes back: the
// hoarder's next grant is clamped to the fair share and carries
// SuggestMax, and the stats surface counts the rebalance.
func TestRebalanceClampsHoarder(t *testing.T) {
	const cap = 8
	_, addr := startEngineServer(t, WithGlobalCap(cap), WithMaxBatch(cap))

	hoarder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hoarder.Close()
	peer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	// The hoarder takes the entire global cap and sits on it.
	lb, err := hoarder.LeaseN(cap)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Trials) != cap {
		t.Fatalf("hoarder leased %d, want %d", len(lb.Trials), cap)
	}

	// The peer's request finds no capacity: an empty busy answer, and
	// the server notes the session starved.
	plb, err := peer.LeaseN(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plb.Trials) != 0 || plb.Retry <= 0 {
		t.Fatalf("starved peer got trials=%d retry=%v, want empty busy answer", len(plb.Trials), plb.Retry)
	}

	// The hoarder's next request gets clamped to the fair share
	// (cap / active sessions) and told to shrink its batches.
	hlb, err := hoarder.LeaseN(1)
	if err != nil {
		t.Fatal(err)
	}
	fair := cap / 2
	if hlb.SuggestMax != fair {
		t.Fatalf("SuggestMax = %d, want fair share %d", hlb.SuggestMax, fair)
	}
	if len(hlb.Trials) != 0 {
		t.Fatalf("hoarder at %d held got %d more trials, want 0", cap, len(hlb.Trials))
	}

	st, err := peer.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebalanced == 0 {
		t.Fatal("StatsResp.Rebalanced = 0 after a clamped grant")
	}
}

// TestSessionSnapshot pins Session immutability: the handle keeps the
// worker identity and a private copy of the feature vector it was built
// with, unaffected by later mutation of the caller's slice or of the
// client's deprecated mutable state.
func TestSessionSnapshot(t *testing.T) {
	_, addr := startEngineServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	feats := []float64{1, 2}
	s := c.Session(SessionWorker(7), SessionFeatures(feats))
	feats[0] = 99 // caller mutates its slice after the snapshot

	if s.Worker() != 7 {
		t.Fatalf("session worker = %d, want 7", s.Worker())
	}
	if got := s.Features(); got[0] != 1 || got[1] != 2 {
		t.Fatalf("session features = %v, want [1 2]", got)
	}

	// The deprecated client-level mutators seed new sessions but never
	// touch existing ones.
	c.SetWorker(9)
	c.SetFeatures([]float64{5})
	if s.Worker() != 7 {
		t.Fatalf("session worker changed to %d after SetWorker", s.Worker())
	}
	if got := s.Features(); len(got) != 2 {
		t.Fatalf("session features changed to %v after SetFeatures", got)
	}
	s2 := c.Session()
	if s2.Worker() != 9 {
		t.Fatalf("new session worker = %d, want 9 from SetWorker", s2.Worker())
	}
	if got := s2.Features(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("new session features = %v, want [5]", got)
	}

	// The session round-trips: leases and reports work through it.
	lb, err := s.LeaseN(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range lb.Trials {
		res := []core.TrialResult{{ID: tr.ID, Value: testMeasure(tr.Algo, tr.Config)}}
		if _, _, err := s.CompleteN(lb.Epoch, res); err != nil {
			t.Fatal(err)
		}
	}
}
