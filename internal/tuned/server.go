// Package tuned is the distributed tuning service: a TCP front-end over
// the lease-based trial engine (core.ConcurrentTuner, or its sharded
// variant core.ShardedEngine), so trials can be evaluated by worker
// processes on other machines while one server owns the decision state.
//
// The division of labour mirrors the in-process engine exactly. The
// server runs both tuning phases and the crash-safe journal; workers
// are pure measurement loops — lease a batch, run it, report a batch —
// with no tuning state of their own. Every failure mode reduces to one
// the engine already handles:
//
//   - A worker that dies holding leases is a missed deadline; the
//     engine reclaims the trials as Timeout failures. Long measurements
//     stay alive by heartbeating.
//   - A duplicate or late report (client retry, reclaimed lease) is
//     acknowledged and dropped — completion is idempotent per trial ID.
//   - A server restart resumes from snapshot + journal
//     (core.ResumeConcurrent) under a fresh session epoch; reports for
//     leases issued by the dead process carry the old epoch and are
//     dropped, never misapplied to a re-issued trial ID.
//
// A server carries either one engine (NewServer) or a whole tenant
// registry (NewTenantServer): many named tuning problems behind one
// port, each with its own engine, epoch, persistence directory and
// calibration state. Sessions are routed by the tenant name in their
// Hello; a client that predates the field lands on the "default"
// tenant, so single-tenant deployments and old workers never notice.
package tuned

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/tenant"
	"repro/internal/wire"
)

// Engine is the trial-engine surface the server needs: leasing,
// reporting, degraded-mode absorption, and the read-side summary calls.
// Both core.ConcurrentTuner and core.ShardedEngine satisfy it.
type Engine interface {
	LeaseN(n int) ([]core.Trial, error)
	CompleteN(results []core.TrialResult) []error
	FailN(fails []core.TrialFailure) []error
	Heartbeat(ids []uint64) []bool
	Alive(ids []uint64) []bool
	Absorb(obs []nominal.Observation) int
	ReclaimExpired() int
	Checkpoint() error
	Best() (algo int, cfg param.Config, value float64)
	Iterations() int
	Counts() []int
	Stats() core.EngineStats
	FailureStats() core.FailureStats
	DriftStats() core.DriftStats
	Degraded() bool
	NumAlgorithms() int
	AlgorithmName(i int) string
	LeaseTimeout() time.Duration
}

// shardedEngine is the optional extension a sharded engine provides:
// the server pins each worker session to one shard at the handshake, so
// a session's leases stay on one selector replica and one lease table.
type shardedEngine interface {
	Engine
	Shards() int
	LeaseNOn(shard, n int) ([]core.Trial, error)
}

// contextualEngine is the optional extension a contextual engine
// provides (ctxtune.Engine): feature-bearing LeaseN requests route to a
// per-context selector replica, and the engine refines its partitioner
// from the completions that flow back (it remembers each contextual
// trial's feature vector itself, so CompleteN needs no extra plumbing).
// Declared structurally — with plain []float64, not a ctxtune type — so
// any engine can opt in without this package importing the subsystem.
type contextualEngine interface {
	Engine
	LeaseNFor(features []float64, n int) ([]core.Trial, error)
	ContextCount() int
}

// DefaultMaxBatch caps the batch size a single LeaseN request may ask
// for; larger requests are clamped, not rejected.
const DefaultMaxBatch = 64

// ConfigHash summarizes a tuning run's algorithm roster for the
// handshake: workers refuse to feed measurements into a run whose
// algorithm indices mean something else. It is wire.ConfigHash — the
// definition moved next to the protocol so the tenant registry computes
// the same hash without importing this package.
func ConfigHash(algos []string) uint32 { return wire.ConfigHash(algos) }

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithTrialTarget makes LeaseN responses report Done once the session's
// tenant engine has completed n trials, telling workers to exit. Zero
// (the default) serves leases indefinitely. On a tenant server the
// target applies per tenant.
func WithTrialTarget(n int) ServerOption {
	return func(s *Server) { s.target = n }
}

// WithMaxBatch overrides DefaultMaxBatch.
func WithMaxBatch(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithConfigHash overrides the hash derived from the algorithm names,
// for deployments whose compatibility contract covers more than the
// roster (corpus version, measurement units, …). Single-engine servers
// only; a tenant server hashes each tenant's roster.
func WithConfigHash(h uint32) ServerOption {
	return func(s *Server) { s.hashOverride = h }
}

// WithSessionCap bounds the leases one connection may hold at once.
// A LeaseN request from a session at its cap gets an empty busy
// response with a load-derived RetryMS instead of trials. Zero (the
// default) leaves sessions unbounded.
func WithSessionCap(n int) ServerOption {
	return func(s *Server) { s.sessionCap = n }
}

// WithGlobalCap bounds the total in-flight leases per engine,
// independently of the engine's own MaxInFlight. Requests over the cap
// get the same busy response. On a tenant server the cap applies to
// each tenant's engine separately — it is an engine-protection limit,
// not a fleet quota. Zero (the default) disables the cap.
func WithGlobalCap(n int) ServerOption {
	return func(s *Server) { s.globalCap = n }
}

// WithRefAlgo sets the algorithm index workers probe when calibrating
// their speed factor (default 0, the first algorithm). Indices outside
// a tenant's roster fall back to 0 for that tenant.
func WithRefAlgo(i int) ServerOption {
	return func(s *Server) {
		if i >= 0 {
			s.refAlgo = i
		}
	}
}

// Server serves trial engines over TCP. It owns no tuning state
// itself: every request maps onto one engine call, so the engine's
// locking, lease reclamation and checkpoint journal work unchanged
// whether trials complete from a local goroutine or a remote worker.
// In tenant mode the engine behind a request is the session's tenant's,
// acquired per request so the registry's LRU can spill idle tenants in
// between.
type Server struct {
	eng          Engine           // single-engine mode (NewServer); nil in tenant mode
	reg          *tenant.Registry // tenant mode (NewTenantServer); nil in single mode
	hashOverride uint32
	target       int
	maxBatch     int
	sessionCap   int // max leases one session may hold; 0 = unbounded
	globalCap    int // max in-flight leases per engine; 0 = unbounded
	refAlgo      int // calibration reference algorithm index

	draining atomic.Bool // set by Drain: answer leases with Draining

	// rtMu guards the per-tenant wire-side runtime table. Runtime state
	// (absorb dedup, calibration) deliberately lives here, not on the
	// engine: it must survive an engine spill, because a worker's seq
	// numbering and speed factor outlive any one residency.
	rtMu sync.Mutex
	rts  map[string]*tenantRT

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// tenantRT is one tenant's wire-side runtime: everything the protocol
// layer tracks about a tenant that is not tuning state. It survives the
// tenant's engine being spilled and warm-restarted.
type tenantRT struct {
	name  string
	epoch int64
	hash  uint32

	nextShard atomic.Uint64 // round-robin session → shard assignment

	// Rebalancing state. sessions counts live connections on this
	// tenant; starved accumulates lease requests the caps answered with
	// an empty batch while peers held capacity, and drains as hoarding
	// sessions get clamped to their fair share. rebalanced counts those
	// clamps for the stats view.
	sessions   atomic.Int64
	starved    atomic.Int64
	rebalanced atomic.Uint64

	// absorbMu serializes degraded-mode delta application so the
	// (worker, seq) dedup check and the engine Absorb are atomic: a
	// retried AbsorbReq can never double-apply its observations.
	absorbMu  sync.Mutex
	absorbSeq map[uint64]uint64 // worker ID → highest applied seq

	// calMu guards the worker-bias calibration table. refs holds each
	// worker's latest reference-probe time; baseline is the fleet
	// minimum, so the fastest calibrated worker has factor 1 and every
	// slower one a factor > 1 that its reported costs are divided by.
	calMu    sync.Mutex
	refs     map[uint64]float64
	baseline float64

	// acquire pins the tenant's engine resident for one request.
	acquire func() (Engine, func(), error)
}

// session is the per-connection state: the protocol version its client
// spoke (every reply frame is stamped with it, so a v1 decoder never
// sees a frame it refuses), the tenant it was routed to, the shard its
// leases are pinned to, and the lease ledger backing the session cap.
// A v3 session serves pipelined requests on concurrent goroutines, so
// the ledger is locked and reply writes echo each request's correlation
// ID; pre-v3 sessions run strict lockstep with corr 0 throughout.
type session struct {
	proto byte
	rt    *tenantRT
	shard int

	wmu         sync.Mutex    // serializes buffered reply writes
	bw          *bufio.Writer // reply buffer over the connection
	outstanding atomic.Int32  // requests dispatched but not yet replied

	mu     sync.Mutex
	leased map[uint64]struct{} // lease IDs issued to this connection
}

// reply buffers one reply frame at the session's protocol version,
// echoing the request's correlation ID, and flushes only when no other
// dispatched request remains unanswered — so a burst of pipelined
// requests costs one write syscall, not one per reply. The write mutex
// keeps pipelined replies from interleaving mid-frame.
func (sess *session) reply(conn net.Conn, typ wire.Type, corr uint16, p wire.Payload) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	err := wire.WriteFrame(sess.bw, sess.proto, typ, corr, p)
	if sess.outstanding.Add(-1) > 0 {
		return err
	}
	if ferr := sess.bw.Flush(); err == nil {
		err = ferr
	}
	return err
}

// write is reply for frames outside the request/reply ledger — the
// handshake and abort paths — balancing the counter itself so the
// frame flushes immediately.
func (sess *session) write(conn net.Conn, typ wire.Type, corr uint16, p wire.Payload) error {
	sess.outstanding.Add(1)
	return sess.reply(conn, typ, corr, p)
}

// holdCount returns the size of the session's lease ledger.
func (sess *session) holdCount() int {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return len(sess.leased)
}

// track records issued leases; untrack clears reported ones.
func (sess *session) track(ids []core.Trial) {
	sess.mu.Lock()
	for _, tr := range ids {
		sess.leased[tr.ID] = struct{}{}
	}
	sess.mu.Unlock()
}

func (sess *session) untrack(id uint64) {
	sess.mu.Lock()
	delete(sess.leased, id)
	sess.mu.Unlock()
}

// prune drops ledger entries the engine no longer considers live
// (completed elsewhere, expired and reclaimed), without extending any
// deadlines, so a session that abandons leases gets its quota back as
// the engine reclaims them.
func (sess *session) prune(eng Engine) {
	sess.mu.Lock()
	if len(sess.leased) == 0 {
		sess.mu.Unlock()
		return
	}
	ids := make([]uint64, 0, len(sess.leased))
	for id := range sess.leased {
		ids = append(ids, id)
	}
	sess.mu.Unlock()
	alive := eng.Alive(ids)
	sess.mu.Lock()
	for i, ok := range alive {
		if !ok {
			delete(sess.leased, ids[i])
		}
	}
	sess.mu.Unlock()
}

// loadRetryMS derives the busy-response retry hint from current load:
// 5ms when idle, climbing linearly to 50ms at the cap, bounded at
// 250ms so a momentarily mis-read load never parks workers for long.
func loadRetryMS(inFlight, capacity int) int64 {
	if capacity <= 0 {
		return 10
	}
	ms := 5 + 45*int64(inFlight)/int64(capacity)
	return min(ms, 250)
}

// NewServer wraps a single engine for serving, as the sole "default"
// tenant. The session epoch — stamped into every lease and checked on
// every report — is drawn from the wall clock at construction, so two
// server processes over the same checkpoint directory never share an
// epoch.
func NewServer(eng Engine, opts ...ServerOption) *Server {
	s := newServer(opts)
	s.eng = eng
	names := make([]string, eng.NumAlgorithms())
	for i := range names {
		names[i] = eng.AlgorithmName(i)
	}
	hash := wire.ConfigHash(names)
	if s.hashOverride != 0 {
		hash = s.hashOverride
	}
	rt := s.newRT(tenant.DefaultName, time.Now().UnixNano(), hash)
	rt.acquire = func() (Engine, func(), error) { return s.eng, func() {}, nil }
	s.rts[tenant.DefaultName] = rt
	return s
}

// NewTenantServer serves a whole tenant registry: sessions are routed
// to the tenant named in their Hello (empty = "default"), each backed
// by its own engine, epoch and persistence directory. Unknown tenant
// names are rejected at the handshake.
func NewTenantServer(reg *tenant.Registry, opts ...ServerOption) *Server {
	s := newServer(opts)
	s.reg = reg
	return s
}

func newServer(opts []ServerOption) *Server {
	s := &Server{
		maxBatch: DefaultMaxBatch,
		conns:    make(map[net.Conn]struct{}),
		rts:      make(map[string]*tenantRT),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

func (s *Server) newRT(name string, epoch int64, hash uint32) *tenantRT {
	return &tenantRT{
		name:      name,
		epoch:     epoch,
		hash:      hash,
		absorbSeq: make(map[uint64]uint64),
		refs:      make(map[uint64]float64),
	}
}

// rtFor returns the wire-side runtime for a registered tenant, creating
// it on first contact (tenant mode only).
func (s *Server) rtFor(t *tenant.Tenant) *tenantRT {
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	name := t.Spec().Name
	rt := s.rts[name]
	if rt == nil {
		rt = s.newRT(name, t.Epoch(), t.Hash())
		rt.acquire = func() (Engine, func(), error) {
			eng, _, release, err := s.reg.Acquire(name)
			return eng, release, err
		}
		s.rts[name] = rt
	}
	return rt
}

// Engine returns the served engine in single-engine mode (for
// inspection: Best, Stats, …); nil on a tenant server, whose engines
// come and go with residency — use Registry instead.
func (s *Server) Engine() Engine { return s.eng }

// Registry returns the tenant registry (nil in single-engine mode).
func (s *Server) Registry() *tenant.Registry { return s.reg }

// Epoch returns the "default" tenant's session epoch (the only epoch in
// single-engine mode). Tenant epochs are per-tenant; see the HelloAck.
func (s *Server) Epoch() int64 {
	if rt := s.lookupRT(tenant.DefaultName); rt != nil {
		return rt.epoch
	}
	if s.reg != nil {
		if t := s.reg.Tenant(tenant.DefaultName); t != nil {
			return t.Epoch()
		}
	}
	return 0
}

// Hash returns the "default" tenant's config hash (the only hash in
// single-engine mode).
func (s *Server) Hash() uint32 {
	if rt := s.lookupRT(tenant.DefaultName); rt != nil {
		return rt.hash
	}
	if s.reg != nil {
		if t := s.reg.Tenant(tenant.DefaultName); t != nil {
			return t.Hash()
		}
	}
	return 0
}

// Rebalanced returns the total number of lease grants the server has
// shrunk to a fair share because a peer session was starving, summed
// across tenants.
func (s *Server) Rebalanced() uint64 {
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	var n uint64
	for _, rt := range s.rts {
		n += rt.rebalanced.Load()
	}
	return n
}

func (s *Server) lookupRT(name string) *tenantRT {
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	return s.rts[name]
}

// Serve accepts connections on ln until Close, handling each on its own
// goroutine. It returns nil after Close, or the first Accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("tuned: Serve on a closed server")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting, closes every live connection, and waits for
// the handlers to drain. The engines are left untouched: outstanding
// leases expire on their own deadlines, and a resumed server picks the
// run up from the journals.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain performs a graceful shutdown: stop issuing leases (LeaseN
// answers Draining with a retry hint), wait for in-flight trials to
// complete — reclaiming expired ones along the way — up to the
// timeout, write a final checkpoint for every resident tenant in
// sorted name order (deterministic, so two drains of the same state
// touch disk identically), then Close. Connections stay open through
// the wait so workers can still report and absorb. Spilled tenants
// were checkpointed when they left residency and need nothing here.
//
// Drain returns the first checkpoint error if any snapshot failed,
// else the Close error; a timeout with trials still in flight is not an
// error — those leases die with their epochs and their reports will be
// dropped by the next server process.
func (s *Server) Drain(timeout time.Duration) error {
	if s.draining.Swap(true) {
		return nil // second Drain: already under way
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.reclaimAll(); s.inFlightAll() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var ckErr error
	if s.reg != nil {
		_, ckErr = s.reg.CheckpointAll()
	} else {
		ckErr = s.eng.Checkpoint()
	}
	if err := s.Close(); err != nil {
		return err
	}
	return ckErr
}

func (s *Server) reclaimAll() int {
	if s.reg != nil {
		return s.reg.ReclaimExpired()
	}
	return s.eng.ReclaimExpired()
}

func (s *Server) inFlightAll() int {
	if s.reg != nil {
		return s.reg.InFlight()
	}
	return s.eng.Stats().InFlight
}

// pipelineWindow bounds the requests one v3 connection may have in
// service concurrently. It is a server-protection limit, not a promise:
// the client's own window is what paces the wire.
const pipelineWindow = 64

// handle runs one connection: handshake, then the request loop. On a
// sharded engine the session is pinned to one shard, assigned
// round-robin across the tenant's connections, so all its leases come
// from one selector replica.
//
// Pre-v3 sessions run request/response lockstep on this goroutine. A
// v3 session pipelines: the loop decodes each request synchronously
// (the frame buffer is reused, so payload bytes never outlive one
// iteration) and serves it on its own goroutine, replies stamped with
// the request's correlation ID in whatever order the engine finishes.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	sess := s.handshake(conn, br)
	if sess == nil {
		return
	}
	sess.rt.sessions.Add(1)
	defer sess.rt.sessions.Add(-1)
	var (
		buf []byte
		sem chan struct{}
		wg  sync.WaitGroup
	)
	if sess.proto >= 3 {
		sem = make(chan struct{}, pipelineWindow)
		defer wg.Wait()
	}
	for {
		typ, corr, payload, nbuf, err := wire.ReadFrameBuf(br, buf)
		if err != nil {
			return // disconnect, or a frame this protocol can't resync from
		}
		buf = nbuf
		req, err := decodeReq(typ, payload)
		if err != nil {
			sess.write(conn, wire.TError, corr, &wire.ErrorResp{Code: wire.CodeBadRequest, Msg: err.Error()})
			return
		}
		sess.outstanding.Add(1)
		if sem == nil {
			if !s.serveReq(conn, sess, typ, corr, req) {
				return
			}
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if !s.serveReq(conn, sess, typ, corr, req) {
				// The request loop notices the close on its next read.
				conn.Close()
			}
		}()
	}
}

// decodeReq parses a request frame's payload into its typed message.
// Decoding happens on the read loop — the payload aliases a reused
// frame buffer, so it must not escape to a service goroutine. Bodyless
// requests and unknown types return (nil, nil); serveReq rejects the
// latter.
func decodeReq(typ wire.Type, payload []byte) (wire.Payload, error) {
	var req wire.Payload
	switch typ {
	case wire.TLeaseN:
		req = &wire.LeaseNReq{}
	case wire.TLeaseP:
		req = &wire.PackedLeaseReq{}
	case wire.TCompleteN:
		req = &wire.CompleteNReq{}
	case wire.TCompleteP:
		req = &wire.PackedCompleteReq{}
	case wire.TFailN:
		req = &wire.FailNReq{}
	case wire.TFailP:
		req = &wire.PackedFailReq{}
	case wire.TAbsorb:
		req = &wire.AbsorbReq{}
	case wire.TCalibrate:
		req = &wire.CalibrateReq{}
	case wire.THeartbeat:
		req = &wire.HeartbeatReq{}
	default:
		return nil, nil
	}
	if err := req.DecodeFrom(payload); err != nil {
		return nil, err
	}
	return req, nil
}

// handshake validates the client Hello, routes the session to its
// tenant, and answers with the tenant's capabilities. It returns the
// established session, or nil when the connection must not proceed.
// Error frames before the client's version is known are stamped v1 —
// the one version every decoder accepts.
func (s *Server) handshake(conn net.Conn, br *bufio.Reader) *session {
	typ, payload, err := wire.ReadFrame(br)
	if err != nil {
		return nil
	}
	if typ != wire.THello {
		wire.WriteMsgV(conn, 1, wire.TError, &wire.ErrorResp{Code: wire.CodeBadRequest, Msg: "expected hello"})
		return nil
	}
	var h wire.Hello
	if err := h.DecodeFrom(payload); err != nil {
		wire.WriteMsgV(conn, 1, wire.TError, &wire.ErrorResp{Code: wire.CodeBadRequest, Msg: err.Error()})
		return nil
	}
	if h.Proto < 1 || h.Proto > wire.Version {
		wire.WriteMsgV(conn, 1, wire.TError, &wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: fmt.Sprintf("protocol version %d, server speaks 1..%d", h.Proto, wire.Version)})
		return nil
	}
	sess := &session{
		proto:  byte(h.Proto),
		bw:     bufio.NewWriterSize(conn, 64<<10),
		leased: make(map[uint64]struct{}),
	}
	name := h.Tenant
	if name == "" {
		// Pre-tenant clients (and tenant-agnostic ones) land here.
		name = tenant.DefaultName
	}
	if s.reg == nil {
		if name != tenant.DefaultName {
			sess.write(conn, wire.TError, 0, &wire.ErrorResp{
				Code: wire.CodeUnknownTenant, Msg: fmt.Sprintf("unknown tenant %q (single-tenant server)", name)})
			return nil
		}
		sess.rt = s.lookupRT(tenant.DefaultName)
	} else {
		t := s.reg.Tenant(name)
		if t == nil {
			sess.write(conn, wire.TError, 0, &wire.ErrorResp{
				Code: wire.CodeUnknownTenant, Msg: fmt.Sprintf("unknown tenant %q", name)})
			return nil
		}
		sess.rt = s.rtFor(t)
	}
	if h.Hash != 0 && h.Hash != sess.rt.hash {
		sess.write(conn, wire.TError, 0, &wire.ErrorResp{
			Code: wire.CodeConfigMismatch,
			Msg:  fmt.Sprintf("config hash %08x, tenant %s runs %08x", h.Hash, name, sess.rt.hash)})
		return nil
	}
	eng, release, err := sess.rt.acquire()
	if err != nil {
		sess.write(conn, wire.TError, 0, &wire.ErrorResp{Code: wire.CodeInternal, Msg: err.Error()})
		return nil
	}
	defer release()
	if se, ok := eng.(shardedEngine); ok && se.Shards() > 1 {
		sess.shard = int((sess.rt.nextShard.Add(1) - 1) % uint64(se.Shards()))
	}
	names := make([]string, eng.NumAlgorithms())
	for i := range names {
		names[i] = eng.AlgorithmName(i)
	}
	ack := wire.HelloAck{
		Proto:      h.Proto,
		Hash:       sess.rt.hash,
		Epoch:      sess.rt.epoch,
		Algos:      names,
		LeaseTTLMS: eng.LeaseTimeout().Milliseconds(),
		RefAlgo:    s.refAlgoFor(eng),
		Tenant:     name,
	}
	if sess.write(conn, wire.THelloAck, 0, &ack) != nil {
		return nil
	}
	return sess
}

// refAlgoFor clamps the configured calibration reference into the
// engine's roster (a tenant with a shorter roster falls back to 0).
func (s *Server) refAlgoFor(eng Engine) int {
	if s.refAlgo >= 0 && s.refAlgo < eng.NumAlgorithms() {
		return s.refAlgo
	}
	return 0
}

// serveReq serves one decoded request against the session's tenant
// engine — acquired per request, so the registry may spill the tenant
// between requests — reporting whether the connection should stay open.
// On a v3 session it runs on a per-request goroutine with corr echoing
// the request frame; pre-v3 it runs lockstep on the read loop (corr 0).
func (s *Server) serveReq(conn net.Conn, sess *session, typ wire.Type, corr uint16, req wire.Payload) bool {
	if typ == wire.TTenants {
		// The aggregate view needs no engine (and must not force one
		// resident).
		return s.serveTenants(conn, sess, corr)
	}
	eng, release, err := sess.rt.acquire()
	if err != nil {
		sess.reply(conn, wire.TError, corr, &wire.ErrorResp{Code: wire.CodeInternal, Msg: err.Error()})
		return false
	}
	defer release()
	switch typ {
	case wire.TLeaseN:
		return s.serveLeaseN(conn, sess, eng, corr, req.(*wire.LeaseNReq))
	case wire.TLeaseP:
		return s.serveLeaseP(conn, sess, eng, corr, req.(*wire.PackedLeaseReq))
	case wire.TCompleteN:
		return s.serveCompleteN(conn, sess, eng, corr, req.(*wire.CompleteNReq))
	case wire.TCompleteP:
		return s.serveCompleteP(conn, sess, eng, corr, req.(*wire.PackedCompleteReq))
	case wire.TFailN:
		return s.serveFailN(conn, sess, eng, corr, req.(*wire.FailNReq))
	case wire.TFailP:
		return s.serveFailP(conn, sess, eng, corr, req.(*wire.PackedFailReq))
	case wire.TAbsorb:
		return s.serveAbsorb(conn, sess, eng, corr, req.(*wire.AbsorbReq))
	case wire.TCalibrate:
		return s.serveCalibrate(conn, sess, corr, req.(*wire.CalibrateReq))
	case wire.THeartbeat:
		return s.serveHeartbeat(conn, sess, eng, corr, req.(*wire.HeartbeatReq))
	case wire.TBest:
		return s.serveBest(conn, sess, eng, corr)
	case wire.TStats:
		return s.serveStats(conn, sess, eng, corr)
	default:
		sess.reply(conn, wire.TError, corr, &wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected frame %s", typ)})
		return false
	}
}

// leaseOut is the transport-agnostic result of one lease request; the
// JSON and packed handlers render it into their response shapes.
type leaseOut struct {
	done       bool
	draining   bool
	retryMS    int64
	suggestMax int
	trials     []core.Trial
}

// lease runs the shared lease logic: target/drain checks, overload
// control, fair-share rebalancing, then the engine call. A nil error
// with empty trials is a busy answer carrying retryMS.
func (s *Server) lease(sess *session, eng Engine, n int, features []float64) (leaseOut, error) {
	var out leaseOut
	if s.target > 0 && eng.Iterations() >= s.target {
		out.done = true
		return out, nil
	}
	if s.draining.Load() {
		// Drain in progress: no new leases. Workers should report what
		// they hold, then back off (or reconnect elsewhere).
		out.draining = true
		out.retryMS = 100
		return out, nil
	}
	if n < 1 {
		n = 1
	}
	if n > s.maxBatch {
		n = s.maxBatch
	}
	// Overload control. The session cap bounds what one connection may
	// hoard; the global cap bounds total in-flight on this engine. Both
	// answer with an empty busy response whose RetryMS grows with load,
	// so backoff pressure rises before the engine's own hard limit
	// (core.ErrTooManyInFlight) is ever reached.
	held := sess.holdCount()
	if s.sessionCap > 0 && held >= s.sessionCap {
		sess.prune(eng)
		held = sess.holdCount()
	}
	inFlight := 0
	if s.sessionCap > 0 || s.globalCap > 0 {
		inFlight = eng.Stats().InFlight
	}
	if s.sessionCap > 0 && held+n > s.sessionCap {
		n = s.sessionCap - held
	}
	if s.globalCap > 0 && inFlight+n > s.globalCap {
		eng.ReclaimExpired()
		inFlight = eng.Stats().InFlight
		n = min(n, s.globalCap-inFlight)
	}
	// Server-push rebalancing: when this tenant has starving peers —
	// sessions whose lease requests the global cap answered empty —
	// clamp any session holding more than its fair share of the cap to
	// that share and advertise the share as SuggestMax, so the hoarder
	// shrinks its batches and freed capacity drains to the starved.
	if s.globalCap > 0 {
		if active := sess.rt.sessions.Load(); active > 1 && sess.rt.starved.Load() > 0 {
			fair := max(s.globalCap/int(active), 1)
			if held+n > fair {
				n = fair - held
				out.suggestMax = fair
				sess.rt.rebalanced.Add(1)
				sess.rt.starved.Add(-1)
			}
		}
	}
	if n <= 0 {
		capacity, load := s.globalCap, inFlight
		if capacity == 0 {
			// Blocked by the session cap alone: scale the hint by how
			// full this session is, not the whole server.
			capacity, load = s.sessionCap, held
		} else if out.suggestMax == 0 {
			// Starved by the global cap while peers hold leases: note it
			// so their next grants get clamped to the fair share.
			sess.rt.starved.Add(1)
		}
		out.retryMS = loadRetryMS(load, capacity)
		return out, nil
	}
	var trials []core.Trial
	var err error
	if ce, ok := eng.(contextualEngine); ok && len(features) > 0 {
		trials, err = ce.LeaseNFor(features, n)
	} else if se, ok := eng.(shardedEngine); ok && se.Shards() > 1 {
		trials, err = se.LeaseNOn(sess.shard%se.Shards(), n)
	} else {
		trials, err = eng.LeaseN(n)
	}
	switch {
	case errors.Is(err, core.ErrTooManyInFlight):
		out.retryMS = loadRetryMS(eng.Stats().InFlight, s.globalCap)
	case err != nil:
		return out, err
	}
	sess.track(trials)
	out.trials = trials
	return out, nil
}

func (s *Server) serveLeaseN(conn net.Conn, sess *session, eng Engine, corr uint16, req *wire.LeaseNReq) bool {
	out, err := s.lease(sess, eng, req.N, req.Features)
	if err != nil {
		sess.reply(conn, wire.TError, corr, &wire.ErrorResp{Code: wire.CodeInternal, Msg: err.Error()})
		return false
	}
	resp := wire.LeaseNResp{
		Epoch:      sess.rt.epoch,
		Done:       out.done,
		Draining:   out.draining,
		RetryMS:    out.retryMS,
		SuggestMax: out.suggestMax,
	}
	for _, tr := range out.trials {
		wt := wire.Trial{
			ID:          tr.ID,
			Algo:        tr.Algo,
			Config:      tr.Config,
			Speculative: tr.Speculative,
			Pinned:      tr.Pinned,
		}
		if !tr.Deadline.IsZero() {
			wt.DeadlineMS = tr.Deadline.UnixMilli()
		}
		resp.Trials = append(resp.Trials, wt)
	}
	return sess.reply(conn, wire.TTrials, corr, &resp) == nil
}

func (s *Server) serveLeaseP(conn net.Conn, sess *session, eng Engine, corr uint16, req *wire.PackedLeaseReq) bool {
	out, err := s.lease(sess, eng, req.N, req.Features)
	if err != nil {
		sess.reply(conn, wire.TError, corr, &wire.ErrorResp{Code: wire.CodeInternal, Msg: err.Error()})
		return false
	}
	resp := wire.PackedTrials{
		Epoch:      sess.rt.epoch,
		Done:       out.done,
		Draining:   out.draining,
		RetryMS:    out.retryMS,
		SuggestMax: out.suggestMax,
		Trials:     make([]wire.PackedTrial, len(out.trials)),
	}
	for i, tr := range out.trials {
		pt := wire.PackedTrial{
			ID:          tr.ID,
			Algo:        tr.Algo,
			Speculative: tr.Speculative,
			Pinned:      tr.Pinned,
			Config:      tr.Config,
		}
		if !tr.Deadline.IsZero() {
			pt.DeadlineMS = tr.Deadline.UnixMilli()
		}
		resp.Trials[i] = pt
	}
	return sess.reply(conn, wire.TTrialsP, corr, &resp) == nil
}

// serveCompleteN applies a completion batch. Reports from another epoch
// (leases issued by a dead server process, or by a different tenant,
// possibly colliding with re-issued trial IDs) are dropped wholesale —
// acknowledged, never applied. Tenant epochs are unique within a
// process, so a report carried across tenants always fails this check.
func (s *Server) serveCompleteN(conn net.Conn, sess *session, eng Engine, corr uint16, req *wire.CompleteNReq) bool {
	var ack wire.AckResp
	if req.Epoch != sess.rt.epoch {
		for _, r := range req.Results {
			ack.Dropped = append(ack.Dropped, r.ID)
		}
		return sess.reply(conn, wire.TAck, corr, &ack) == nil
	}
	factor := sess.rt.factorFor(req.Worker)
	results := make([]core.TrialResult, len(req.Results))
	for i, r := range req.Results {
		results[i] = core.TrialResult{ID: r.ID, Value: r.Value / factor}
		sess.untrack(r.ID)
	}
	for i, err := range eng.CompleteN(results) {
		if err == nil {
			ack.Applied = append(ack.Applied, results[i].ID)
		} else {
			ack.Dropped = append(ack.Dropped, results[i].ID)
		}
	}
	return sess.reply(conn, wire.TAck, corr, &ack) == nil
}

// serveCompleteP is serveCompleteN over the packed hot-path encoding:
// same epoch gate, calibration factor and idempotent engine semantics,
// answered with a packed ack.
func (s *Server) serveCompleteP(conn net.Conn, sess *session, eng Engine, corr uint16, req *wire.PackedCompleteReq) bool {
	var ack wire.PackedAck
	if req.Epoch != sess.rt.epoch {
		for _, r := range req.Results {
			ack.Dropped = append(ack.Dropped, r.ID)
		}
		return sess.reply(conn, wire.TAckP, corr, &ack) == nil
	}
	factor := sess.rt.factorFor(req.Worker)
	results := make([]core.TrialResult, len(req.Results))
	for i, r := range req.Results {
		results[i] = core.TrialResult{ID: r.ID, Value: r.Value / factor}
		sess.untrack(r.ID)
	}
	for i, err := range eng.CompleteN(results) {
		if err == nil {
			ack.Applied = append(ack.Applied, results[i].ID)
		} else {
			ack.Dropped = append(ack.Dropped, results[i].ID)
		}
	}
	return sess.reply(conn, wire.TAckP, corr, &ack) == nil
}

// failKindOf maps a packed failure kind byte onto guard's taxonomy;
// unknown bytes become Invalid, mirroring the JSON path's treatment of
// unknown kind strings.
func failKindOf(kind uint8) guard.Kind {
	switch kind {
	case wire.FailPanic:
		return guard.Panic
	case wire.FailTimeout:
		return guard.Timeout
	default:
		return guard.Invalid
	}
}

func (s *Server) serveFailN(conn net.Conn, sess *session, eng Engine, corr uint16, req *wire.FailNReq) bool {
	var ack wire.AckResp
	if req.Epoch != sess.rt.epoch {
		for _, f := range req.Fails {
			ack.Dropped = append(ack.Dropped, f.ID)
		}
		return sess.reply(conn, wire.TAck, corr, &ack) == nil
	}
	fails := make([]core.TrialFailure, len(req.Fails))
	for i, f := range req.Fails {
		sess.untrack(f.ID)
		kind, ok := guard.KindFromString(f.Kind)
		if !ok {
			kind = guard.Invalid
		}
		fails[i] = core.TrialFailure{ID: f.ID, Failure: guard.Failure{
			Kind:    kind,
			Err:     errors.New(f.Msg),
			Penalty: f.Penalty,
		}}
	}
	for i, err := range eng.FailN(fails) {
		if err == nil {
			ack.Applied = append(ack.Applied, fails[i].ID)
		} else {
			ack.Dropped = append(ack.Dropped, fails[i].ID)
		}
	}
	return sess.reply(conn, wire.TAck, corr, &ack) == nil
}

func (s *Server) serveFailP(conn net.Conn, sess *session, eng Engine, corr uint16, req *wire.PackedFailReq) bool {
	var ack wire.PackedAck
	if req.Epoch != sess.rt.epoch {
		for _, f := range req.Fails {
			ack.Dropped = append(ack.Dropped, f.ID)
		}
		return sess.reply(conn, wire.TAckP, corr, &ack) == nil
	}
	fails := make([]core.TrialFailure, len(req.Fails))
	for i, f := range req.Fails {
		sess.untrack(f.ID)
		fails[i] = core.TrialFailure{ID: f.ID, Failure: guard.Failure{
			Kind:    failKindOf(f.Kind),
			Err:     errors.New(f.Msg),
			Penalty: f.Penalty,
		}}
	}
	for i, err := range eng.FailN(fails) {
		if err == nil {
			ack.Applied = append(ack.Applied, fails[i].ID)
		} else {
			ack.Dropped = append(ack.Dropped, fails[i].ID)
		}
	}
	return sess.reply(conn, wire.TAckP, corr, &ack) == nil
}

func (s *Server) serveHeartbeat(conn net.Conn, sess *session, eng Engine, corr uint16, req *wire.HeartbeatReq) bool {
	var resp wire.HeartbeatResp
	if req.Epoch == sess.rt.epoch {
		for i, ok := range eng.Heartbeat(req.IDs) {
			if ok {
				resp.Alive = append(resp.Alive, req.IDs[i])
			}
		}
	}
	// Another epoch's leases are all dead here by definition: empty Alive.
	return sess.reply(conn, wire.THeartbeatAck, corr, &resp) == nil
}

// serveAbsorb folds a degraded-mode worker's locally-learned delta into
// the tenant's engine, idempotently per (worker, seq): a retried request
// whose seq was already applied is acknowledged as a duplicate and
// dropped, so transport retries can never double-count an observation.
// Seqs must be strictly increasing per worker; the dedup check and the
// engine call happen under one lock so concurrent retries serialize.
func (s *Server) serveAbsorb(conn net.Conn, sess *session, eng Engine, corr uint16, req *wire.AbsorbReq) bool {
	rt := sess.rt
	var ack wire.AbsorbAck
	rt.absorbMu.Lock()
	last, seen := rt.absorbSeq[req.Worker]
	if seen && req.Seq <= last {
		ack.Duplicate = true
	} else {
		factor := rt.factorFor(req.Worker)
		obs := make([]nominal.Observation, len(req.Obs))
		for i, o := range req.Obs {
			v := o.Value
			if !o.Failed {
				// Failure penalties are policy constants, not measured
				// times — normalizing them would understate slow workers'
				// failures.
				v /= factor
			}
			obs[i] = nominal.Observation{Arm: o.Arm, Value: v, Failed: o.Failed}
		}
		ack.Applied = eng.Absorb(obs)
		rt.absorbSeq[req.Worker] = req.Seq
	}
	rt.absorbMu.Unlock()
	return sess.reply(conn, wire.TAbsorbAck, corr, &ack) == nil
}

// serveCalibrate registers a worker's reference-probe time and answers
// with the speed factor now dividing that worker's reported costs. The
// baseline is the minimum reference across the tenant's fleet, so
// factors only ever normalize toward the fastest machine; re-calibrating
// (the worker probes periodically) tracks thermal or load changes, and a
// new fastest worker lowers the baseline, raising everyone else's factor
// on their next report. Calibration is per tenant: fleets serving
// different tenants may not even overlap.
func (s *Server) serveCalibrate(conn net.Conn, sess *session, corr uint16, req *wire.CalibrateReq) bool {
	rt := sess.rt
	if req.Worker == 0 || req.Ref <= 0 || math.IsInf(req.Ref, 0) || math.IsNaN(req.Ref) {
		sess.reply(conn, wire.TError, corr, &wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: "calibrate needs a nonzero worker and a positive finite reference"})
		return false
	}
	rt.calMu.Lock()
	rt.refs[req.Worker] = req.Ref
	rt.baseline = 0
	for _, r := range rt.refs {
		if rt.baseline == 0 || r < rt.baseline {
			rt.baseline = r
		}
	}
	ack := wire.CalibrateAck{Factor: req.Ref / rt.baseline, Baseline: rt.baseline}
	rt.calMu.Unlock()
	return sess.reply(conn, wire.TCalibrateAck, corr, &ack) == nil
}

// factorFor returns the speed factor dividing a worker's reported
// costs: 1 for the fleet-fastest, uncalibrated, or anonymous workers.
func (rt *tenantRT) factorFor(worker uint64) float64 {
	if worker == 0 {
		return 1
	}
	rt.calMu.Lock()
	defer rt.calMu.Unlock()
	ref, ok := rt.refs[worker]
	if !ok || rt.baseline <= 0 {
		return 1
	}
	return ref / rt.baseline
}

func (s *Server) serveBest(conn net.Conn, sess *session, eng Engine, corr uint16) bool {
	algo, cfg, val := eng.Best()
	resp := wire.BestResp{Algo: algo, Iterations: eng.Iterations()}
	if algo >= 0 {
		// Before any completion val is +Inf, which JSON cannot carry;
		// Algo == -1 already says "no best yet", so Value stays zero.
		resp.Name = eng.AlgorithmName(algo)
		resp.Config = cfg
		resp.Value = val
	}
	return sess.reply(conn, wire.TBestAck, corr, &resp) == nil
}

func (s *Server) serveStats(conn net.Conn, sess *session, eng Engine, corr uint16) bool {
	st := eng.Stats()
	ds := eng.DriftStats()
	rt := sess.rt
	rt.calMu.Lock()
	calibrated := len(rt.refs)
	rt.calMu.Unlock()
	resp := wire.StatsResp{
		Leased:     st.Leased,
		Completed:  st.Completed,
		Failed:     st.Failed,
		Expired:    st.Expired,
		InFlight:   st.InFlight,
		Absorbed:   st.Absorbed,
		Iterations: eng.Iterations(),
		Counts:     eng.Counts(),
		Degraded:   eng.Degraded(),

		DriftEvents:        ds.Events,
		DriftDecays:        ds.Decays,
		DriftReforks:       ds.Reforks,
		DriftStale:         ds.StaleDropped,
		DriftOutliers:      ds.Outliers,
		PendingProbes:      ds.PendingProbes,
		ProbesScheduled:    ds.ProbesScheduled,
		QuarantineReprobes: ds.QuarantineReprobes,

		Calibrated: calibrated,
		Rebalanced: sess.rt.rebalanced.Load(),
	}
	if ce, ok := eng.(contextualEngine); ok {
		resp.Contexts = ce.ContextCount()
	}
	return sess.reply(conn, wire.TStatsAck, corr, &resp) == nil
}

// serveTenants answers the aggregate view: one row per registered
// tenant (resident or spilled; listing never forces a warm restart)
// plus fleet totals. A single-engine server reports its one tenant.
func (s *Server) serveTenants(conn net.Conn, sess *session, corr uint16) bool {
	var resp wire.TenantsResp
	if s.reg != nil {
		for _, in := range s.reg.Snapshot() {
			resp.Tenants = append(resp.Tenants, wire.TenantStat{
				Name:       in.Name,
				Resident:   in.Resident,
				Epoch:      in.Epoch,
				Iterations: in.Iterations,
				InFlight:   in.InFlight,
				Completed:  in.Completed,
				BestAlgo:   in.BestAlgo,
				BestName:   in.BestName,
				BestValue:  in.BestValue,
				Spills:     in.Spills,
				Restarts:   in.Restarts,
			})
			if in.Resident {
				resp.Resident++
				resp.InFlight += in.InFlight
			}
			resp.Iterations += in.Iterations
		}
	} else {
		eng := s.eng
		st := eng.Stats()
		ts := wire.TenantStat{
			Name:       tenant.DefaultName,
			Resident:   true,
			Epoch:      sess.rt.epoch,
			Iterations: eng.Iterations(),
			InFlight:   st.InFlight,
			Completed:  st.Completed,
			BestAlgo:   -1,
		}
		if algo, _, val := eng.Best(); algo >= 0 {
			ts.BestAlgo = algo
			ts.BestName = eng.AlgorithmName(algo)
			ts.BestValue = val
		}
		resp.Tenants = []wire.TenantStat{ts}
		resp.Resident = 1
		resp.Iterations = ts.Iterations
		resp.InFlight = ts.InFlight
	}
	return sess.reply(conn, wire.TTenantsAck, corr, &resp) == nil
}
