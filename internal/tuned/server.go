// Package tuned is the distributed tuning service: a TCP front-end over
// the lease-based trial engine (core.ConcurrentTuner, or its sharded
// variant core.ShardedEngine), so trials can be evaluated by worker
// processes on other machines while one server owns the decision state.
//
// The division of labour mirrors the in-process engine exactly. The
// server runs both tuning phases and the crash-safe journal; workers
// are pure measurement loops — lease a batch, run it, report a batch —
// with no tuning state of their own. Every failure mode reduces to one
// the engine already handles:
//
//   - A worker that dies holding leases is a missed deadline; the
//     engine reclaims the trials as Timeout failures. Long measurements
//     stay alive by heartbeating.
//   - A duplicate or late report (client retry, reclaimed lease) is
//     acknowledged and dropped — completion is idempotent per trial ID.
//   - A server restart resumes from snapshot + journal
//     (core.ResumeConcurrent) under a fresh session epoch; reports for
//     leases issued by the dead process carry the old epoch and are
//     dropped, never misapplied to a re-issued trial ID.
package tuned

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/wire"
)

// Engine is the trial-engine surface the server needs: leasing,
// reporting, degraded-mode absorption, and the read-side summary calls.
// Both core.ConcurrentTuner and core.ShardedEngine satisfy it.
type Engine interface {
	LeaseN(n int) ([]core.Trial, error)
	CompleteN(results []core.TrialResult) []error
	FailN(fails []core.TrialFailure) []error
	Heartbeat(ids []uint64) []bool
	Alive(ids []uint64) []bool
	Absorb(obs []nominal.Observation) int
	ReclaimExpired() int
	Checkpoint() error
	Best() (algo int, cfg param.Config, value float64)
	Iterations() int
	Counts() []int
	Stats() core.EngineStats
	FailureStats() core.FailureStats
	DriftStats() core.DriftStats
	Degraded() bool
	NumAlgorithms() int
	AlgorithmName(i int) string
	LeaseTimeout() time.Duration
}

// shardedEngine is the optional extension a sharded engine provides:
// the server pins each worker session to one shard at the handshake, so
// a session's leases stay on one selector replica and one lease table.
type shardedEngine interface {
	Engine
	Shards() int
	LeaseNOn(shard, n int) ([]core.Trial, error)
}

// DefaultMaxBatch caps the batch size a single LeaseN request may ask
// for; larger requests are clamped, not rejected.
const DefaultMaxBatch = 64

// ConfigHash summarizes a tuning run's algorithm roster for the
// handshake: workers refuse to feed measurements into a run whose
// algorithm indices mean something else.
func ConfigHash(algos []string) uint32 {
	h := crc32.NewIEEE()
	for _, a := range algos {
		h.Write([]byte(a))
		h.Write([]byte{0})
	}
	return h.Sum32()
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithTrialTarget makes LeaseN responses report Done once the engine
// has completed n trials, telling workers to exit. Zero (the default)
// serves leases indefinitely.
func WithTrialTarget(n int) ServerOption {
	return func(s *Server) { s.target = n }
}

// WithMaxBatch overrides DefaultMaxBatch.
func WithMaxBatch(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithConfigHash overrides the hash derived from the algorithm names,
// for deployments whose compatibility contract covers more than the
// roster (corpus version, measurement units, …).
func WithConfigHash(h uint32) ServerOption {
	return func(s *Server) { s.hash = h }
}

// WithSessionCap bounds the leases one connection may hold at once.
// A LeaseN request from a session at its cap gets an empty busy
// response with a load-derived RetryMS instead of trials. Zero (the
// default) leaves sessions unbounded.
func WithSessionCap(n int) ServerOption {
	return func(s *Server) { s.sessionCap = n }
}

// WithGlobalCap bounds the total in-flight leases across all sessions,
// independently of the engine's own MaxInFlight. Requests over the cap
// get the same busy response. Zero (the default) disables the cap.
func WithGlobalCap(n int) ServerOption {
	return func(s *Server) { s.globalCap = n }
}

// WithRefAlgo sets the algorithm index workers probe when calibrating
// their speed factor (default 0, the first algorithm). Indices outside
// the roster are ignored.
func WithRefAlgo(i int) ServerOption {
	return func(s *Server) {
		if i >= 0 && i < s.eng.NumAlgorithms() {
			s.refAlgo = i
		}
	}
}

// Server serves one trial engine over TCP. It owns no tuning state
// itself: every request maps onto one engine call, so the engine's
// locking, lease reclamation and checkpoint journal work unchanged
// whether trials complete from a local goroutine or a remote worker.
type Server struct {
	eng        Engine
	sharded    shardedEngine // non-nil when eng has more than one shard
	hash       uint32
	epoch      int64
	target     int
	maxBatch   int
	sessionCap int // max leases one session may hold; 0 = unbounded
	globalCap  int // max in-flight leases across sessions; 0 = unbounded
	refAlgo    int // calibration reference algorithm index

	nextShard atomic.Uint64 // round-robin session → shard assignment
	draining  atomic.Bool   // set by Drain: answer leases with Draining

	// absorbMu serializes degraded-mode delta application so the
	// (worker, seq) dedup check and the engine Absorb are atomic: a
	// retried AbsorbReq can never double-apply its observations.
	absorbMu  sync.Mutex
	absorbSeq map[uint64]uint64 // worker ID → highest applied seq

	// calMu guards the worker-bias calibration table. refs holds each
	// worker's latest reference-probe time; baseline is the fleet
	// minimum, so the fastest calibrated worker has factor 1 and every
	// slower one a factor > 1 that its reported costs are divided by.
	calMu    sync.Mutex
	refs     map[uint64]float64
	baseline float64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// session is the per-connection lease ledger backing the session cap.
// The dispatch loop is the only goroutine touching it, so no lock.
type session struct {
	leased map[uint64]struct{} // lease IDs issued to this connection
}

// prune drops ledger entries the engine no longer considers live
// (completed elsewhere, expired and reclaimed), without extending any
// deadlines, so a session that abandons leases gets its quota back as
// the engine reclaims them.
func (sess *session) prune(eng Engine) {
	if len(sess.leased) == 0 {
		return
	}
	ids := make([]uint64, 0, len(sess.leased))
	for id := range sess.leased {
		ids = append(ids, id)
	}
	for i, ok := range eng.Alive(ids) {
		if !ok {
			delete(sess.leased, ids[i])
		}
	}
}

// loadRetryMS derives the busy-response retry hint from current load:
// 5ms when idle, climbing linearly to 50ms at the cap, bounded at
// 250ms so a momentarily mis-read load never parks workers for long.
func loadRetryMS(inFlight, capacity int) int64 {
	if capacity <= 0 {
		return 10
	}
	ms := 5 + 45*int64(inFlight)/int64(capacity)
	return min(ms, 250)
}

// NewServer wraps an engine for serving. The session epoch — stamped
// into every lease and checked on every report — is drawn from the
// wall clock at construction, so two server processes over the same
// checkpoint directory never share an epoch.
func NewServer(eng Engine, opts ...ServerOption) *Server {
	names := make([]string, eng.NumAlgorithms())
	for i := range names {
		names[i] = eng.AlgorithmName(i)
	}
	s := &Server{
		eng:       eng,
		hash:      ConfigHash(names),
		epoch:     time.Now().UnixNano(),
		maxBatch:  DefaultMaxBatch,
		conns:     make(map[net.Conn]struct{}),
		absorbSeq: make(map[uint64]uint64),
		refs:      make(map[uint64]float64),
	}
	if se, ok := eng.(shardedEngine); ok && se.Shards() > 1 {
		s.sharded = se
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Engine returns the served engine (for inspection: Best, Stats, …).
func (s *Server) Engine() Engine { return s.eng }

// Epoch returns the session epoch of this server process.
func (s *Server) Epoch() int64 { return s.epoch }

// Hash returns the config hash offered in the handshake.
func (s *Server) Hash() uint32 { return s.hash }

// Serve accepts connections on ln until Close, handling each on its own
// goroutine. It returns nil after Close, or the first Accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("tuned: Serve on a closed server")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting, closes every live connection, and waits for
// the handlers to drain. The engine is left untouched: outstanding
// leases expire on their own deadlines, and a resumed server picks the
// run up from the journal.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain performs a graceful shutdown: stop issuing leases (LeaseN
// answers Draining with a retry hint), wait for in-flight trials to
// complete — reclaiming expired ones along the way — up to the
// timeout, write a final engine checkpoint, then Close. Connections
// stay open through the wait so workers can still report and absorb.
//
// Drain returns the checkpoint error if the snapshot failed, else the
// Close error; a timeout with trials still in flight is not an error —
// those leases die with the epoch and their reports will be dropped by
// the next server process.
func (s *Server) Drain(timeout time.Duration) error {
	if s.draining.Swap(true) {
		return nil // second Drain: already under way
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		s.eng.ReclaimExpired()
		if s.eng.Stats().InFlight == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	ckErr := s.eng.Checkpoint()
	if err := s.Close(); err != nil {
		return err
	}
	return ckErr
}

// handle runs one connection: handshake, then a request/response loop.
// On a sharded engine the session is pinned to one shard, assigned
// round-robin across connections, so all its leases come from one
// selector replica.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if !s.handshake(conn) {
		return
	}
	shard := 0
	if s.sharded != nil {
		shard = int((s.nextShard.Add(1) - 1) % uint64(s.sharded.Shards()))
	}
	sess := &session{leased: make(map[uint64]struct{})}
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // disconnect, or a frame this protocol can't resync from
		}
		if !s.dispatch(conn, sess, shard, typ, payload) {
			return
		}
	}
}

// handshake validates the client Hello and answers with the server's
// capabilities, reporting whether the connection may proceed.
func (s *Server) handshake(conn net.Conn) bool {
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		return false
	}
	if typ != wire.THello {
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{Code: wire.CodeBadRequest, Msg: "expected hello"})
		return false
	}
	var h wire.Hello
	if err := wire.Unmarshal(payload, &h); err != nil {
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}
	if h.Proto != wire.Version {
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: fmt.Sprintf("protocol version %d, server speaks %d", h.Proto, wire.Version)})
		return false
	}
	if h.Hash != 0 && h.Hash != s.hash {
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{
			Code: wire.CodeConfigMismatch,
			Msg:  fmt.Sprintf("config hash %08x, server runs %08x", h.Hash, s.hash)})
		return false
	}
	names := make([]string, s.eng.NumAlgorithms())
	for i := range names {
		names[i] = s.eng.AlgorithmName(i)
	}
	ack := wire.HelloAck{
		Proto:      wire.Version,
		Hash:       s.hash,
		Epoch:      s.epoch,
		Algos:      names,
		LeaseTTLMS: s.eng.LeaseTimeout().Milliseconds(),
		RefAlgo:    s.refAlgo,
	}
	return wire.WriteMsg(conn, wire.THelloAck, ack) == nil
}

// dispatch serves one request frame, reporting whether the connection
// should stay open.
func (s *Server) dispatch(conn net.Conn, sess *session, shard int, typ wire.Type, payload []byte) bool {
	switch typ {
	case wire.TLeaseN:
		var req wire.LeaseNReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, err)
		}
		return s.serveLeaseN(conn, sess, shard, req)
	case wire.TCompleteN:
		var req wire.CompleteNReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, err)
		}
		return s.serveCompleteN(conn, sess, req)
	case wire.TFailN:
		var req wire.FailNReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, err)
		}
		return s.serveFailN(conn, sess, req)
	case wire.TAbsorb:
		var req wire.AbsorbReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, err)
		}
		return s.serveAbsorb(conn, req)
	case wire.TCalibrate:
		var req wire.CalibrateReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, err)
		}
		return s.serveCalibrate(conn, req)
	case wire.THeartbeat:
		var req wire.HeartbeatReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, err)
		}
		return s.serveHeartbeat(conn, req)
	case wire.TBest:
		return s.serveBest(conn)
	case wire.TStats:
		return s.serveStats(conn)
	default:
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected frame %s", typ)})
		return false
	}
}

func (s *Server) badRequest(conn net.Conn, err error) bool {
	wire.WriteMsg(conn, wire.TError, wire.ErrorResp{Code: wire.CodeBadRequest, Msg: err.Error()})
	return false
}

func (s *Server) serveLeaseN(conn net.Conn, sess *session, shard int, req wire.LeaseNReq) bool {
	resp := wire.LeaseNResp{Epoch: s.epoch}
	if s.target > 0 && s.eng.Iterations() >= s.target {
		resp.Done = true
		return wire.WriteMsg(conn, wire.TTrials, resp) == nil
	}
	if s.draining.Load() {
		// Drain in progress: no new leases. Workers should report what
		// they hold, then back off (or reconnect elsewhere).
		resp.Draining = true
		resp.RetryMS = 100
		return wire.WriteMsg(conn, wire.TTrials, resp) == nil
	}
	n := req.N
	if n < 1 {
		n = 1
	}
	if n > s.maxBatch {
		n = s.maxBatch
	}
	// Overload control. The session cap bounds what one connection may
	// hoard; the global cap bounds total in-flight across sessions. Both
	// answer with an empty busy response whose RetryMS grows with load,
	// so backoff pressure rises before the engine's own hard limit
	// (core.ErrTooManyInFlight) is ever reached.
	if s.sessionCap > 0 && len(sess.leased) >= s.sessionCap {
		sess.prune(s.eng)
	}
	inFlight := 0
	if s.sessionCap > 0 || s.globalCap > 0 {
		inFlight = s.eng.Stats().InFlight
	}
	if s.sessionCap > 0 && len(sess.leased)+n > s.sessionCap {
		n = s.sessionCap - len(sess.leased)
	}
	if s.globalCap > 0 && inFlight+n > s.globalCap {
		s.eng.ReclaimExpired()
		inFlight = s.eng.Stats().InFlight
		n = min(n, s.globalCap-inFlight)
	}
	if n <= 0 {
		capacity, load := s.globalCap, inFlight
		if capacity == 0 {
			// Blocked by the session cap alone: scale the hint by how
			// full this session is, not the whole server.
			capacity, load = s.sessionCap, len(sess.leased)
		}
		resp.RetryMS = loadRetryMS(load, capacity)
		return wire.WriteMsg(conn, wire.TTrials, resp) == nil
	}
	var trials []core.Trial
	var err error
	if s.sharded != nil {
		trials, err = s.sharded.LeaseNOn(shard, n)
	} else {
		trials, err = s.eng.LeaseN(n)
	}
	switch {
	case errors.Is(err, core.ErrTooManyInFlight):
		resp.RetryMS = loadRetryMS(s.eng.Stats().InFlight, s.globalCap)
	case err != nil:
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{Code: wire.CodeInternal, Msg: err.Error()})
		return false
	}
	for _, tr := range trials {
		sess.leased[tr.ID] = struct{}{}
		wt := wire.Trial{
			ID:          tr.ID,
			Algo:        tr.Algo,
			Config:      tr.Config,
			Speculative: tr.Speculative,
			Pinned:      tr.Pinned,
		}
		if !tr.Deadline.IsZero() {
			wt.DeadlineMS = tr.Deadline.UnixMilli()
		}
		resp.Trials = append(resp.Trials, wt)
	}
	return wire.WriteMsg(conn, wire.TTrials, resp) == nil
}

// serveCompleteN applies a completion batch. Reports from another epoch
// (leases issued by a dead server process, possibly colliding with
// re-issued trial IDs) are dropped wholesale — acknowledged, never
// applied.
func (s *Server) serveCompleteN(conn net.Conn, sess *session, req wire.CompleteNReq) bool {
	var ack wire.AckResp
	if req.Epoch != s.epoch {
		for _, r := range req.Results {
			ack.Dropped = append(ack.Dropped, r.ID)
		}
		return wire.WriteMsg(conn, wire.TAck, ack) == nil
	}
	factor := s.factorFor(req.Worker)
	results := make([]core.TrialResult, len(req.Results))
	for i, r := range req.Results {
		results[i] = core.TrialResult{ID: r.ID, Value: r.Value / factor}
		delete(sess.leased, r.ID)
	}
	for i, err := range s.eng.CompleteN(results) {
		if err == nil {
			ack.Applied = append(ack.Applied, results[i].ID)
		} else {
			ack.Dropped = append(ack.Dropped, results[i].ID)
		}
	}
	return wire.WriteMsg(conn, wire.TAck, ack) == nil
}

func (s *Server) serveFailN(conn net.Conn, sess *session, req wire.FailNReq) bool {
	var ack wire.AckResp
	if req.Epoch != s.epoch {
		for _, f := range req.Fails {
			ack.Dropped = append(ack.Dropped, f.ID)
		}
		return wire.WriteMsg(conn, wire.TAck, ack) == nil
	}
	fails := make([]core.TrialFailure, len(req.Fails))
	for i, f := range req.Fails {
		delete(sess.leased, f.ID)
		kind, ok := guard.KindFromString(f.Kind)
		if !ok {
			kind = guard.Invalid
		}
		fails[i] = core.TrialFailure{ID: f.ID, Failure: guard.Failure{
			Kind:    kind,
			Err:     errors.New(f.Msg),
			Penalty: f.Penalty,
		}}
	}
	for i, err := range s.eng.FailN(fails) {
		if err == nil {
			ack.Applied = append(ack.Applied, fails[i].ID)
		} else {
			ack.Dropped = append(ack.Dropped, fails[i].ID)
		}
	}
	return wire.WriteMsg(conn, wire.TAck, ack) == nil
}

func (s *Server) serveHeartbeat(conn net.Conn, req wire.HeartbeatReq) bool {
	var resp wire.HeartbeatResp
	if req.Epoch == s.epoch {
		for i, ok := range s.eng.Heartbeat(req.IDs) {
			if ok {
				resp.Alive = append(resp.Alive, req.IDs[i])
			}
		}
	}
	// Another epoch's leases are all dead here by definition: empty Alive.
	return wire.WriteMsg(conn, wire.THeartbeatAck, resp) == nil
}

// serveAbsorb folds a degraded-mode worker's locally-learned delta into
// the engine, idempotently per (worker, seq): a retried request whose
// seq was already applied is acknowledged as a duplicate and dropped,
// so transport retries can never double-count an observation. Seqs must
// be strictly increasing per worker; the dedup check and the engine
// call happen under one lock so concurrent retries serialize.
func (s *Server) serveAbsorb(conn net.Conn, req wire.AbsorbReq) bool {
	var ack wire.AbsorbAck
	s.absorbMu.Lock()
	last, seen := s.absorbSeq[req.Worker]
	if seen && req.Seq <= last {
		ack.Duplicate = true
	} else {
		factor := s.factorFor(req.Worker)
		obs := make([]nominal.Observation, len(req.Obs))
		for i, o := range req.Obs {
			v := o.Value
			if !o.Failed {
				// Failure penalties are policy constants, not measured
				// times — normalizing them would understate slow workers'
				// failures.
				v /= factor
			}
			obs[i] = nominal.Observation{Arm: o.Arm, Value: v, Failed: o.Failed}
		}
		ack.Applied = s.eng.Absorb(obs)
		s.absorbSeq[req.Worker] = req.Seq
	}
	s.absorbMu.Unlock()
	return wire.WriteMsg(conn, wire.TAbsorbAck, ack) == nil
}

// serveCalibrate registers a worker's reference-probe time and answers
// with the speed factor now dividing that worker's reported costs. The
// baseline is the fleet minimum reference, so factors only ever
// normalize toward the fastest machine; re-calibrating (the worker
// probes periodically) tracks thermal or load changes, and a new
// fastest worker lowers the baseline, raising everyone else's factor on
// their next report.
func (s *Server) serveCalibrate(conn net.Conn, req wire.CalibrateReq) bool {
	if req.Worker == 0 || req.Ref <= 0 || math.IsInf(req.Ref, 0) || math.IsNaN(req.Ref) {
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: "calibrate needs a nonzero worker and a positive finite reference"})
		return false
	}
	s.calMu.Lock()
	s.refs[req.Worker] = req.Ref
	s.baseline = 0
	for _, r := range s.refs {
		if s.baseline == 0 || r < s.baseline {
			s.baseline = r
		}
	}
	ack := wire.CalibrateAck{Factor: req.Ref / s.baseline, Baseline: s.baseline}
	s.calMu.Unlock()
	return wire.WriteMsg(conn, wire.TCalibrateAck, ack) == nil
}

// factorFor returns the speed factor dividing a worker's reported
// costs: 1 for the fleet-fastest, uncalibrated, or anonymous workers.
func (s *Server) factorFor(worker uint64) float64 {
	if worker == 0 {
		return 1
	}
	s.calMu.Lock()
	defer s.calMu.Unlock()
	ref, ok := s.refs[worker]
	if !ok || s.baseline <= 0 {
		return 1
	}
	return ref / s.baseline
}

func (s *Server) serveBest(conn net.Conn) bool {
	algo, cfg, val := s.eng.Best()
	resp := wire.BestResp{Algo: algo, Iterations: s.eng.Iterations()}
	if algo >= 0 {
		// Before any completion val is +Inf, which JSON cannot carry;
		// Algo == -1 already says "no best yet", so Value stays zero.
		resp.Name = s.eng.AlgorithmName(algo)
		resp.Config = cfg
		resp.Value = val
	}
	return wire.WriteMsg(conn, wire.TBestAck, resp) == nil
}

func (s *Server) serveStats(conn net.Conn) bool {
	st := s.eng.Stats()
	ds := s.eng.DriftStats()
	s.calMu.Lock()
	calibrated := len(s.refs)
	s.calMu.Unlock()
	resp := wire.StatsResp{
		Leased:     st.Leased,
		Completed:  st.Completed,
		Failed:     st.Failed,
		Expired:    st.Expired,
		InFlight:   st.InFlight,
		Absorbed:   st.Absorbed,
		Iterations: s.eng.Iterations(),
		Counts:     s.eng.Counts(),
		Degraded:   s.eng.Degraded(),

		DriftEvents:        ds.Events,
		DriftDecays:        ds.Decays,
		DriftReforks:       ds.Reforks,
		DriftStale:         ds.StaleDropped,
		DriftOutliers:      ds.Outliers,
		PendingProbes:      ds.PendingProbes,
		ProbesScheduled:    ds.ProbesScheduled,
		QuarantineReprobes: ds.QuarantineReprobes,

		Calibrated: calibrated,
	}
	return wire.WriteMsg(conn, wire.TStatsAck, resp) == nil
}
