// Package tuned is the distributed tuning service: a TCP front-end over
// the lease-based trial engine (core.ConcurrentTuner, or its sharded
// variant core.ShardedEngine), so trials can be evaluated by worker
// processes on other machines while one server owns the decision state.
//
// The division of labour mirrors the in-process engine exactly. The
// server runs both tuning phases and the crash-safe journal; workers
// are pure measurement loops — lease a batch, run it, report a batch —
// with no tuning state of their own. Every failure mode reduces to one
// the engine already handles:
//
//   - A worker that dies holding leases is a missed deadline; the
//     engine reclaims the trials as Timeout failures. Long measurements
//     stay alive by heartbeating.
//   - A duplicate or late report (client retry, reclaimed lease) is
//     acknowledged and dropped — completion is idempotent per trial ID.
//   - A server restart resumes from snapshot + journal
//     (core.ResumeConcurrent) under a fresh session epoch; reports for
//     leases issued by the dead process carry the old epoch and are
//     dropped, never misapplied to a re-issued trial ID.
//
// A server carries either one engine (NewServer) or a whole tenant
// registry (NewTenantServer): many named tuning problems behind one
// port, each with its own engine, epoch, persistence directory and
// calibration state. Sessions are routed by the tenant name in their
// Hello; a client that predates the field lands on the "default"
// tenant, so single-tenant deployments and old workers never notice.
package tuned

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/tenant"
	"repro/internal/wire"
)

// Engine is the trial-engine surface the server needs: leasing,
// reporting, degraded-mode absorption, and the read-side summary calls.
// Both core.ConcurrentTuner and core.ShardedEngine satisfy it.
type Engine interface {
	LeaseN(n int) ([]core.Trial, error)
	CompleteN(results []core.TrialResult) []error
	FailN(fails []core.TrialFailure) []error
	Heartbeat(ids []uint64) []bool
	Alive(ids []uint64) []bool
	Absorb(obs []nominal.Observation) int
	ReclaimExpired() int
	Checkpoint() error
	Best() (algo int, cfg param.Config, value float64)
	Iterations() int
	Counts() []int
	Stats() core.EngineStats
	FailureStats() core.FailureStats
	DriftStats() core.DriftStats
	Degraded() bool
	NumAlgorithms() int
	AlgorithmName(i int) string
	LeaseTimeout() time.Duration
}

// shardedEngine is the optional extension a sharded engine provides:
// the server pins each worker session to one shard at the handshake, so
// a session's leases stay on one selector replica and one lease table.
type shardedEngine interface {
	Engine
	Shards() int
	LeaseNOn(shard, n int) ([]core.Trial, error)
}

// contextualEngine is the optional extension a contextual engine
// provides (ctxtune.Engine): feature-bearing LeaseN requests route to a
// per-context selector replica, and the engine refines its partitioner
// from the completions that flow back (it remembers each contextual
// trial's feature vector itself, so CompleteN needs no extra plumbing).
// Declared structurally — with plain []float64, not a ctxtune type — so
// any engine can opt in without this package importing the subsystem.
type contextualEngine interface {
	Engine
	LeaseNFor(features []float64, n int) ([]core.Trial, error)
	ContextCount() int
}

// DefaultMaxBatch caps the batch size a single LeaseN request may ask
// for; larger requests are clamped, not rejected.
const DefaultMaxBatch = 64

// ConfigHash summarizes a tuning run's algorithm roster for the
// handshake: workers refuse to feed measurements into a run whose
// algorithm indices mean something else. It is wire.ConfigHash — the
// definition moved next to the protocol so the tenant registry computes
// the same hash without importing this package.
func ConfigHash(algos []string) uint32 { return wire.ConfigHash(algos) }

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithTrialTarget makes LeaseN responses report Done once the session's
// tenant engine has completed n trials, telling workers to exit. Zero
// (the default) serves leases indefinitely. On a tenant server the
// target applies per tenant.
func WithTrialTarget(n int) ServerOption {
	return func(s *Server) { s.target = n }
}

// WithMaxBatch overrides DefaultMaxBatch.
func WithMaxBatch(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithConfigHash overrides the hash derived from the algorithm names,
// for deployments whose compatibility contract covers more than the
// roster (corpus version, measurement units, …). Single-engine servers
// only; a tenant server hashes each tenant's roster.
func WithConfigHash(h uint32) ServerOption {
	return func(s *Server) { s.hashOverride = h }
}

// WithSessionCap bounds the leases one connection may hold at once.
// A LeaseN request from a session at its cap gets an empty busy
// response with a load-derived RetryMS instead of trials. Zero (the
// default) leaves sessions unbounded.
func WithSessionCap(n int) ServerOption {
	return func(s *Server) { s.sessionCap = n }
}

// WithGlobalCap bounds the total in-flight leases per engine,
// independently of the engine's own MaxInFlight. Requests over the cap
// get the same busy response. On a tenant server the cap applies to
// each tenant's engine separately — it is an engine-protection limit,
// not a fleet quota. Zero (the default) disables the cap.
func WithGlobalCap(n int) ServerOption {
	return func(s *Server) { s.globalCap = n }
}

// WithRefAlgo sets the algorithm index workers probe when calibrating
// their speed factor (default 0, the first algorithm). Indices outside
// a tenant's roster fall back to 0 for that tenant.
func WithRefAlgo(i int) ServerOption {
	return func(s *Server) {
		if i >= 0 {
			s.refAlgo = i
		}
	}
}

// Server serves trial engines over TCP. It owns no tuning state
// itself: every request maps onto one engine call, so the engine's
// locking, lease reclamation and checkpoint journal work unchanged
// whether trials complete from a local goroutine or a remote worker.
// In tenant mode the engine behind a request is the session's tenant's,
// acquired per request so the registry's LRU can spill idle tenants in
// between.
type Server struct {
	eng          Engine           // single-engine mode (NewServer); nil in tenant mode
	reg          *tenant.Registry // tenant mode (NewTenantServer); nil in single mode
	hashOverride uint32
	target       int
	maxBatch     int
	sessionCap   int // max leases one session may hold; 0 = unbounded
	globalCap    int // max in-flight leases per engine; 0 = unbounded
	refAlgo      int // calibration reference algorithm index

	draining atomic.Bool // set by Drain: answer leases with Draining

	// rtMu guards the per-tenant wire-side runtime table. Runtime state
	// (absorb dedup, calibration) deliberately lives here, not on the
	// engine: it must survive an engine spill, because a worker's seq
	// numbering and speed factor outlive any one residency.
	rtMu sync.Mutex
	rts  map[string]*tenantRT

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// tenantRT is one tenant's wire-side runtime: everything the protocol
// layer tracks about a tenant that is not tuning state. It survives the
// tenant's engine being spilled and warm-restarted.
type tenantRT struct {
	name  string
	epoch int64
	hash  uint32

	nextShard atomic.Uint64 // round-robin session → shard assignment

	// absorbMu serializes degraded-mode delta application so the
	// (worker, seq) dedup check and the engine Absorb are atomic: a
	// retried AbsorbReq can never double-apply its observations.
	absorbMu  sync.Mutex
	absorbSeq map[uint64]uint64 // worker ID → highest applied seq

	// calMu guards the worker-bias calibration table. refs holds each
	// worker's latest reference-probe time; baseline is the fleet
	// minimum, so the fastest calibrated worker has factor 1 and every
	// slower one a factor > 1 that its reported costs are divided by.
	calMu    sync.Mutex
	refs     map[uint64]float64
	baseline float64

	// acquire pins the tenant's engine resident for one request.
	acquire func() (Engine, func(), error)
}

// session is the per-connection state: the protocol version its client
// spoke (every reply frame is stamped with it, so a v1 decoder never
// sees a frame it refuses), the tenant it was routed to, the shard its
// leases are pinned to, and the lease ledger backing the session cap.
// The dispatch loop is the only goroutine touching leased, so no lock.
type session struct {
	proto  byte
	rt     *tenantRT
	shard  int
	leased map[uint64]struct{} // lease IDs issued to this connection
}

// write sends one reply frame at the session's protocol version.
func (sess *session) write(conn net.Conn, typ wire.Type, v any) error {
	return wire.WriteMsgV(conn, sess.proto, typ, v)
}

// prune drops ledger entries the engine no longer considers live
// (completed elsewhere, expired and reclaimed), without extending any
// deadlines, so a session that abandons leases gets its quota back as
// the engine reclaims them.
func (sess *session) prune(eng Engine) {
	if len(sess.leased) == 0 {
		return
	}
	ids := make([]uint64, 0, len(sess.leased))
	for id := range sess.leased {
		ids = append(ids, id)
	}
	for i, ok := range eng.Alive(ids) {
		if !ok {
			delete(sess.leased, ids[i])
		}
	}
}

// loadRetryMS derives the busy-response retry hint from current load:
// 5ms when idle, climbing linearly to 50ms at the cap, bounded at
// 250ms so a momentarily mis-read load never parks workers for long.
func loadRetryMS(inFlight, capacity int) int64 {
	if capacity <= 0 {
		return 10
	}
	ms := 5 + 45*int64(inFlight)/int64(capacity)
	return min(ms, 250)
}

// NewServer wraps a single engine for serving, as the sole "default"
// tenant. The session epoch — stamped into every lease and checked on
// every report — is drawn from the wall clock at construction, so two
// server processes over the same checkpoint directory never share an
// epoch.
func NewServer(eng Engine, opts ...ServerOption) *Server {
	s := newServer(opts)
	s.eng = eng
	names := make([]string, eng.NumAlgorithms())
	for i := range names {
		names[i] = eng.AlgorithmName(i)
	}
	hash := wire.ConfigHash(names)
	if s.hashOverride != 0 {
		hash = s.hashOverride
	}
	rt := s.newRT(tenant.DefaultName, time.Now().UnixNano(), hash)
	rt.acquire = func() (Engine, func(), error) { return s.eng, func() {}, nil }
	s.rts[tenant.DefaultName] = rt
	return s
}

// NewTenantServer serves a whole tenant registry: sessions are routed
// to the tenant named in their Hello (empty = "default"), each backed
// by its own engine, epoch and persistence directory. Unknown tenant
// names are rejected at the handshake.
func NewTenantServer(reg *tenant.Registry, opts ...ServerOption) *Server {
	s := newServer(opts)
	s.reg = reg
	return s
}

func newServer(opts []ServerOption) *Server {
	s := &Server{
		maxBatch: DefaultMaxBatch,
		conns:    make(map[net.Conn]struct{}),
		rts:      make(map[string]*tenantRT),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

func (s *Server) newRT(name string, epoch int64, hash uint32) *tenantRT {
	return &tenantRT{
		name:      name,
		epoch:     epoch,
		hash:      hash,
		absorbSeq: make(map[uint64]uint64),
		refs:      make(map[uint64]float64),
	}
}

// rtFor returns the wire-side runtime for a registered tenant, creating
// it on first contact (tenant mode only).
func (s *Server) rtFor(t *tenant.Tenant) *tenantRT {
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	name := t.Spec().Name
	rt := s.rts[name]
	if rt == nil {
		rt = s.newRT(name, t.Epoch(), t.Hash())
		rt.acquire = func() (Engine, func(), error) {
			eng, _, release, err := s.reg.Acquire(name)
			return eng, release, err
		}
		s.rts[name] = rt
	}
	return rt
}

// Engine returns the served engine in single-engine mode (for
// inspection: Best, Stats, …); nil on a tenant server, whose engines
// come and go with residency — use Registry instead.
func (s *Server) Engine() Engine { return s.eng }

// Registry returns the tenant registry (nil in single-engine mode).
func (s *Server) Registry() *tenant.Registry { return s.reg }

// Epoch returns the "default" tenant's session epoch (the only epoch in
// single-engine mode). Tenant epochs are per-tenant; see the HelloAck.
func (s *Server) Epoch() int64 {
	if rt := s.lookupRT(tenant.DefaultName); rt != nil {
		return rt.epoch
	}
	if s.reg != nil {
		if t := s.reg.Tenant(tenant.DefaultName); t != nil {
			return t.Epoch()
		}
	}
	return 0
}

// Hash returns the "default" tenant's config hash (the only hash in
// single-engine mode).
func (s *Server) Hash() uint32 {
	if rt := s.lookupRT(tenant.DefaultName); rt != nil {
		return rt.hash
	}
	if s.reg != nil {
		if t := s.reg.Tenant(tenant.DefaultName); t != nil {
			return t.Hash()
		}
	}
	return 0
}

func (s *Server) lookupRT(name string) *tenantRT {
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	return s.rts[name]
}

// Serve accepts connections on ln until Close, handling each on its own
// goroutine. It returns nil after Close, or the first Accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("tuned: Serve on a closed server")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting, closes every live connection, and waits for
// the handlers to drain. The engines are left untouched: outstanding
// leases expire on their own deadlines, and a resumed server picks the
// run up from the journals.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain performs a graceful shutdown: stop issuing leases (LeaseN
// answers Draining with a retry hint), wait for in-flight trials to
// complete — reclaiming expired ones along the way — up to the
// timeout, write a final checkpoint for every resident tenant in
// sorted name order (deterministic, so two drains of the same state
// touch disk identically), then Close. Connections stay open through
// the wait so workers can still report and absorb. Spilled tenants
// were checkpointed when they left residency and need nothing here.
//
// Drain returns the first checkpoint error if any snapshot failed,
// else the Close error; a timeout with trials still in flight is not an
// error — those leases die with their epochs and their reports will be
// dropped by the next server process.
func (s *Server) Drain(timeout time.Duration) error {
	if s.draining.Swap(true) {
		return nil // second Drain: already under way
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.reclaimAll(); s.inFlightAll() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var ckErr error
	if s.reg != nil {
		_, ckErr = s.reg.CheckpointAll()
	} else {
		ckErr = s.eng.Checkpoint()
	}
	if err := s.Close(); err != nil {
		return err
	}
	return ckErr
}

func (s *Server) reclaimAll() int {
	if s.reg != nil {
		return s.reg.ReclaimExpired()
	}
	return s.eng.ReclaimExpired()
}

func (s *Server) inFlightAll() int {
	if s.reg != nil {
		return s.reg.InFlight()
	}
	return s.eng.Stats().InFlight
}

// handle runs one connection: handshake, then a request/response loop.
// On a sharded engine the session is pinned to one shard, assigned
// round-robin across the tenant's connections, so all its leases come
// from one selector replica.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sess := s.handshake(conn)
	if sess == nil {
		return
	}
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // disconnect, or a frame this protocol can't resync from
		}
		if !s.dispatch(conn, sess, typ, payload) {
			return
		}
	}
}

// handshake validates the client Hello, routes the session to its
// tenant, and answers with the tenant's capabilities. It returns the
// established session, or nil when the connection must not proceed.
// Error frames before the client's version is known are stamped v1 —
// the one version every decoder accepts.
func (s *Server) handshake(conn net.Conn) *session {
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		return nil
	}
	if typ != wire.THello {
		wire.WriteMsgV(conn, 1, wire.TError, wire.ErrorResp{Code: wire.CodeBadRequest, Msg: "expected hello"})
		return nil
	}
	var h wire.Hello
	if err := wire.Unmarshal(payload, &h); err != nil {
		wire.WriteMsgV(conn, 1, wire.TError, wire.ErrorResp{Code: wire.CodeBadRequest, Msg: err.Error()})
		return nil
	}
	if h.Proto < 1 || h.Proto > wire.Version {
		wire.WriteMsgV(conn, 1, wire.TError, wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: fmt.Sprintf("protocol version %d, server speaks 1..%d", h.Proto, wire.Version)})
		return nil
	}
	sess := &session{proto: byte(h.Proto), leased: make(map[uint64]struct{})}
	name := h.Tenant
	if name == "" {
		// Pre-tenant clients (and tenant-agnostic ones) land here.
		name = tenant.DefaultName
	}
	if s.reg == nil {
		if name != tenant.DefaultName {
			sess.write(conn, wire.TError, wire.ErrorResp{
				Code: wire.CodeUnknownTenant, Msg: fmt.Sprintf("unknown tenant %q (single-tenant server)", name)})
			return nil
		}
		sess.rt = s.lookupRT(tenant.DefaultName)
	} else {
		t := s.reg.Tenant(name)
		if t == nil {
			sess.write(conn, wire.TError, wire.ErrorResp{
				Code: wire.CodeUnknownTenant, Msg: fmt.Sprintf("unknown tenant %q", name)})
			return nil
		}
		sess.rt = s.rtFor(t)
	}
	if h.Hash != 0 && h.Hash != sess.rt.hash {
		sess.write(conn, wire.TError, wire.ErrorResp{
			Code: wire.CodeConfigMismatch,
			Msg:  fmt.Sprintf("config hash %08x, tenant %s runs %08x", h.Hash, name, sess.rt.hash)})
		return nil
	}
	eng, release, err := sess.rt.acquire()
	if err != nil {
		sess.write(conn, wire.TError, wire.ErrorResp{Code: wire.CodeInternal, Msg: err.Error()})
		return nil
	}
	defer release()
	if se, ok := eng.(shardedEngine); ok && se.Shards() > 1 {
		sess.shard = int((sess.rt.nextShard.Add(1) - 1) % uint64(se.Shards()))
	}
	names := make([]string, eng.NumAlgorithms())
	for i := range names {
		names[i] = eng.AlgorithmName(i)
	}
	ack := wire.HelloAck{
		Proto:      h.Proto,
		Hash:       sess.rt.hash,
		Epoch:      sess.rt.epoch,
		Algos:      names,
		LeaseTTLMS: eng.LeaseTimeout().Milliseconds(),
		RefAlgo:    s.refAlgoFor(eng),
		Tenant:     name,
	}
	if sess.write(conn, wire.THelloAck, ack) != nil {
		return nil
	}
	return sess
}

// refAlgoFor clamps the configured calibration reference into the
// engine's roster (a tenant with a shorter roster falls back to 0).
func (s *Server) refAlgoFor(eng Engine) int {
	if s.refAlgo >= 0 && s.refAlgo < eng.NumAlgorithms() {
		return s.refAlgo
	}
	return 0
}

// dispatch serves one request frame against the session's tenant
// engine — acquired per request, so the registry may spill the tenant
// between requests — reporting whether the connection should stay open.
func (s *Server) dispatch(conn net.Conn, sess *session, typ wire.Type, payload []byte) bool {
	if typ == wire.TTenants {
		// The aggregate view needs no engine (and must not force one
		// resident).
		return s.serveTenants(conn, sess)
	}
	eng, release, err := sess.rt.acquire()
	if err != nil {
		sess.write(conn, wire.TError, wire.ErrorResp{Code: wire.CodeInternal, Msg: err.Error()})
		return false
	}
	defer release()
	switch typ {
	case wire.TLeaseN:
		var req wire.LeaseNReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, sess, err)
		}
		return s.serveLeaseN(conn, sess, eng, req)
	case wire.TCompleteN:
		var req wire.CompleteNReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, sess, err)
		}
		return s.serveCompleteN(conn, sess, eng, req)
	case wire.TFailN:
		var req wire.FailNReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, sess, err)
		}
		return s.serveFailN(conn, sess, eng, req)
	case wire.TAbsorb:
		var req wire.AbsorbReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, sess, err)
		}
		return s.serveAbsorb(conn, sess, eng, req)
	case wire.TCalibrate:
		var req wire.CalibrateReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, sess, err)
		}
		return s.serveCalibrate(conn, sess, req)
	case wire.THeartbeat:
		var req wire.HeartbeatReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, sess, err)
		}
		return s.serveHeartbeat(conn, sess, eng, req)
	case wire.TBest:
		return s.serveBest(conn, sess, eng)
	case wire.TStats:
		return s.serveStats(conn, sess, eng)
	default:
		sess.write(conn, wire.TError, wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected frame %s", typ)})
		return false
	}
}

func (s *Server) badRequest(conn net.Conn, sess *session, err error) bool {
	sess.write(conn, wire.TError, wire.ErrorResp{Code: wire.CodeBadRequest, Msg: err.Error()})
	return false
}

func (s *Server) serveLeaseN(conn net.Conn, sess *session, eng Engine, req wire.LeaseNReq) bool {
	resp := wire.LeaseNResp{Epoch: sess.rt.epoch}
	if s.target > 0 && eng.Iterations() >= s.target {
		resp.Done = true
		return sess.write(conn, wire.TTrials, resp) == nil
	}
	if s.draining.Load() {
		// Drain in progress: no new leases. Workers should report what
		// they hold, then back off (or reconnect elsewhere).
		resp.Draining = true
		resp.RetryMS = 100
		return sess.write(conn, wire.TTrials, resp) == nil
	}
	n := req.N
	if n < 1 {
		n = 1
	}
	if n > s.maxBatch {
		n = s.maxBatch
	}
	// Overload control. The session cap bounds what one connection may
	// hoard; the global cap bounds total in-flight on this engine. Both
	// answer with an empty busy response whose RetryMS grows with load,
	// so backoff pressure rises before the engine's own hard limit
	// (core.ErrTooManyInFlight) is ever reached.
	if s.sessionCap > 0 && len(sess.leased) >= s.sessionCap {
		sess.prune(eng)
	}
	inFlight := 0
	if s.sessionCap > 0 || s.globalCap > 0 {
		inFlight = eng.Stats().InFlight
	}
	if s.sessionCap > 0 && len(sess.leased)+n > s.sessionCap {
		n = s.sessionCap - len(sess.leased)
	}
	if s.globalCap > 0 && inFlight+n > s.globalCap {
		eng.ReclaimExpired()
		inFlight = eng.Stats().InFlight
		n = min(n, s.globalCap-inFlight)
	}
	if n <= 0 {
		capacity, load := s.globalCap, inFlight
		if capacity == 0 {
			// Blocked by the session cap alone: scale the hint by how
			// full this session is, not the whole server.
			capacity, load = s.sessionCap, len(sess.leased)
		}
		resp.RetryMS = loadRetryMS(load, capacity)
		return sess.write(conn, wire.TTrials, resp) == nil
	}
	var trials []core.Trial
	var err error
	if ce, ok := eng.(contextualEngine); ok && len(req.Features) > 0 {
		trials, err = ce.LeaseNFor(req.Features, n)
	} else if se, ok := eng.(shardedEngine); ok && se.Shards() > 1 {
		trials, err = se.LeaseNOn(sess.shard%se.Shards(), n)
	} else {
		trials, err = eng.LeaseN(n)
	}
	switch {
	case errors.Is(err, core.ErrTooManyInFlight):
		resp.RetryMS = loadRetryMS(eng.Stats().InFlight, s.globalCap)
	case err != nil:
		sess.write(conn, wire.TError, wire.ErrorResp{Code: wire.CodeInternal, Msg: err.Error()})
		return false
	}
	for _, tr := range trials {
		sess.leased[tr.ID] = struct{}{}
		wt := wire.Trial{
			ID:          tr.ID,
			Algo:        tr.Algo,
			Config:      tr.Config,
			Speculative: tr.Speculative,
			Pinned:      tr.Pinned,
		}
		if !tr.Deadline.IsZero() {
			wt.DeadlineMS = tr.Deadline.UnixMilli()
		}
		resp.Trials = append(resp.Trials, wt)
	}
	return sess.write(conn, wire.TTrials, resp) == nil
}

// serveCompleteN applies a completion batch. Reports from another epoch
// (leases issued by a dead server process, or by a different tenant,
// possibly colliding with re-issued trial IDs) are dropped wholesale —
// acknowledged, never applied. Tenant epochs are unique within a
// process, so a report carried across tenants always fails this check.
func (s *Server) serveCompleteN(conn net.Conn, sess *session, eng Engine, req wire.CompleteNReq) bool {
	var ack wire.AckResp
	if req.Epoch != sess.rt.epoch {
		for _, r := range req.Results {
			ack.Dropped = append(ack.Dropped, r.ID)
		}
		return sess.write(conn, wire.TAck, ack) == nil
	}
	factor := sess.rt.factorFor(req.Worker)
	results := make([]core.TrialResult, len(req.Results))
	for i, r := range req.Results {
		results[i] = core.TrialResult{ID: r.ID, Value: r.Value / factor}
		delete(sess.leased, r.ID)
	}
	for i, err := range eng.CompleteN(results) {
		if err == nil {
			ack.Applied = append(ack.Applied, results[i].ID)
		} else {
			ack.Dropped = append(ack.Dropped, results[i].ID)
		}
	}
	return sess.write(conn, wire.TAck, ack) == nil
}

func (s *Server) serveFailN(conn net.Conn, sess *session, eng Engine, req wire.FailNReq) bool {
	var ack wire.AckResp
	if req.Epoch != sess.rt.epoch {
		for _, f := range req.Fails {
			ack.Dropped = append(ack.Dropped, f.ID)
		}
		return sess.write(conn, wire.TAck, ack) == nil
	}
	fails := make([]core.TrialFailure, len(req.Fails))
	for i, f := range req.Fails {
		delete(sess.leased, f.ID)
		kind, ok := guard.KindFromString(f.Kind)
		if !ok {
			kind = guard.Invalid
		}
		fails[i] = core.TrialFailure{ID: f.ID, Failure: guard.Failure{
			Kind:    kind,
			Err:     errors.New(f.Msg),
			Penalty: f.Penalty,
		}}
	}
	for i, err := range eng.FailN(fails) {
		if err == nil {
			ack.Applied = append(ack.Applied, fails[i].ID)
		} else {
			ack.Dropped = append(ack.Dropped, fails[i].ID)
		}
	}
	return sess.write(conn, wire.TAck, ack) == nil
}

func (s *Server) serveHeartbeat(conn net.Conn, sess *session, eng Engine, req wire.HeartbeatReq) bool {
	var resp wire.HeartbeatResp
	if req.Epoch == sess.rt.epoch {
		for i, ok := range eng.Heartbeat(req.IDs) {
			if ok {
				resp.Alive = append(resp.Alive, req.IDs[i])
			}
		}
	}
	// Another epoch's leases are all dead here by definition: empty Alive.
	return sess.write(conn, wire.THeartbeatAck, resp) == nil
}

// serveAbsorb folds a degraded-mode worker's locally-learned delta into
// the tenant's engine, idempotently per (worker, seq): a retried request
// whose seq was already applied is acknowledged as a duplicate and
// dropped, so transport retries can never double-count an observation.
// Seqs must be strictly increasing per worker; the dedup check and the
// engine call happen under one lock so concurrent retries serialize.
func (s *Server) serveAbsorb(conn net.Conn, sess *session, eng Engine, req wire.AbsorbReq) bool {
	rt := sess.rt
	var ack wire.AbsorbAck
	rt.absorbMu.Lock()
	last, seen := rt.absorbSeq[req.Worker]
	if seen && req.Seq <= last {
		ack.Duplicate = true
	} else {
		factor := rt.factorFor(req.Worker)
		obs := make([]nominal.Observation, len(req.Obs))
		for i, o := range req.Obs {
			v := o.Value
			if !o.Failed {
				// Failure penalties are policy constants, not measured
				// times — normalizing them would understate slow workers'
				// failures.
				v /= factor
			}
			obs[i] = nominal.Observation{Arm: o.Arm, Value: v, Failed: o.Failed}
		}
		ack.Applied = eng.Absorb(obs)
		rt.absorbSeq[req.Worker] = req.Seq
	}
	rt.absorbMu.Unlock()
	return sess.write(conn, wire.TAbsorbAck, ack) == nil
}

// serveCalibrate registers a worker's reference-probe time and answers
// with the speed factor now dividing that worker's reported costs. The
// baseline is the minimum reference across the tenant's fleet, so
// factors only ever normalize toward the fastest machine; re-calibrating
// (the worker probes periodically) tracks thermal or load changes, and a
// new fastest worker lowers the baseline, raising everyone else's factor
// on their next report. Calibration is per tenant: fleets serving
// different tenants may not even overlap.
func (s *Server) serveCalibrate(conn net.Conn, sess *session, req wire.CalibrateReq) bool {
	rt := sess.rt
	if req.Worker == 0 || req.Ref <= 0 || math.IsInf(req.Ref, 0) || math.IsNaN(req.Ref) {
		sess.write(conn, wire.TError, wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: "calibrate needs a nonzero worker and a positive finite reference"})
		return false
	}
	rt.calMu.Lock()
	rt.refs[req.Worker] = req.Ref
	rt.baseline = 0
	for _, r := range rt.refs {
		if rt.baseline == 0 || r < rt.baseline {
			rt.baseline = r
		}
	}
	ack := wire.CalibrateAck{Factor: req.Ref / rt.baseline, Baseline: rt.baseline}
	rt.calMu.Unlock()
	return sess.write(conn, wire.TCalibrateAck, ack) == nil
}

// factorFor returns the speed factor dividing a worker's reported
// costs: 1 for the fleet-fastest, uncalibrated, or anonymous workers.
func (rt *tenantRT) factorFor(worker uint64) float64 {
	if worker == 0 {
		return 1
	}
	rt.calMu.Lock()
	defer rt.calMu.Unlock()
	ref, ok := rt.refs[worker]
	if !ok || rt.baseline <= 0 {
		return 1
	}
	return ref / rt.baseline
}

func (s *Server) serveBest(conn net.Conn, sess *session, eng Engine) bool {
	algo, cfg, val := eng.Best()
	resp := wire.BestResp{Algo: algo, Iterations: eng.Iterations()}
	if algo >= 0 {
		// Before any completion val is +Inf, which JSON cannot carry;
		// Algo == -1 already says "no best yet", so Value stays zero.
		resp.Name = eng.AlgorithmName(algo)
		resp.Config = cfg
		resp.Value = val
	}
	return sess.write(conn, wire.TBestAck, resp) == nil
}

func (s *Server) serveStats(conn net.Conn, sess *session, eng Engine) bool {
	st := eng.Stats()
	ds := eng.DriftStats()
	rt := sess.rt
	rt.calMu.Lock()
	calibrated := len(rt.refs)
	rt.calMu.Unlock()
	resp := wire.StatsResp{
		Leased:     st.Leased,
		Completed:  st.Completed,
		Failed:     st.Failed,
		Expired:    st.Expired,
		InFlight:   st.InFlight,
		Absorbed:   st.Absorbed,
		Iterations: eng.Iterations(),
		Counts:     eng.Counts(),
		Degraded:   eng.Degraded(),

		DriftEvents:        ds.Events,
		DriftDecays:        ds.Decays,
		DriftReforks:       ds.Reforks,
		DriftStale:         ds.StaleDropped,
		DriftOutliers:      ds.Outliers,
		PendingProbes:      ds.PendingProbes,
		ProbesScheduled:    ds.ProbesScheduled,
		QuarantineReprobes: ds.QuarantineReprobes,

		Calibrated: calibrated,
	}
	if ce, ok := eng.(contextualEngine); ok {
		resp.Contexts = ce.ContextCount()
	}
	return sess.write(conn, wire.TStatsAck, resp) == nil
}

// serveTenants answers the aggregate view: one row per registered
// tenant (resident or spilled; listing never forces a warm restart)
// plus fleet totals. A single-engine server reports its one tenant.
func (s *Server) serveTenants(conn net.Conn, sess *session) bool {
	var resp wire.TenantsResp
	if s.reg != nil {
		for _, in := range s.reg.Snapshot() {
			resp.Tenants = append(resp.Tenants, wire.TenantStat{
				Name:       in.Name,
				Resident:   in.Resident,
				Epoch:      in.Epoch,
				Iterations: in.Iterations,
				InFlight:   in.InFlight,
				Completed:  in.Completed,
				BestAlgo:   in.BestAlgo,
				BestName:   in.BestName,
				BestValue:  in.BestValue,
				Spills:     in.Spills,
				Restarts:   in.Restarts,
			})
			if in.Resident {
				resp.Resident++
				resp.InFlight += in.InFlight
			}
			resp.Iterations += in.Iterations
		}
	} else {
		eng := s.eng
		st := eng.Stats()
		ts := wire.TenantStat{
			Name:       tenant.DefaultName,
			Resident:   true,
			Epoch:      sess.rt.epoch,
			Iterations: eng.Iterations(),
			InFlight:   st.InFlight,
			Completed:  st.Completed,
			BestAlgo:   -1,
		}
		if algo, _, val := eng.Best(); algo >= 0 {
			ts.BestAlgo = algo
			ts.BestName = eng.AlgorithmName(algo)
			ts.BestValue = val
		}
		resp.Tenants = []wire.TenantStat{ts}
		resp.Resident = 1
		resp.Iterations = ts.Iterations
		resp.InFlight = ts.InFlight
	}
	return sess.write(conn, wire.TTenantsAck, resp) == nil
}
