// Package tuned is the distributed tuning service: a TCP front-end over
// the lease-based trial engine (core.ConcurrentTuner, or its sharded
// variant core.ShardedEngine), so trials can be evaluated by worker
// processes on other machines while one server owns the decision state.
//
// The division of labour mirrors the in-process engine exactly. The
// server runs both tuning phases and the crash-safe journal; workers
// are pure measurement loops — lease a batch, run it, report a batch —
// with no tuning state of their own. Every failure mode reduces to one
// the engine already handles:
//
//   - A worker that dies holding leases is a missed deadline; the
//     engine reclaims the trials as Timeout failures. Long measurements
//     stay alive by heartbeating.
//   - A duplicate or late report (client retry, reclaimed lease) is
//     acknowledged and dropped — completion is idempotent per trial ID.
//   - A server restart resumes from snapshot + journal
//     (core.ResumeConcurrent) under a fresh session epoch; reports for
//     leases issued by the dead process carry the old epoch and are
//     dropped, never misapplied to a re-issued trial ID.
package tuned

import (
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/param"
	"repro/internal/wire"
)

// Engine is the trial-engine surface the server needs: leasing,
// reporting, and the read-side summary calls. Both core.ConcurrentTuner
// and core.ShardedEngine satisfy it.
type Engine interface {
	LeaseN(n int) ([]core.Trial, error)
	CompleteN(results []core.TrialResult) []error
	FailN(fails []core.TrialFailure) []error
	Heartbeat(ids []uint64) []bool
	Best() (algo int, cfg param.Config, value float64)
	Iterations() int
	Counts() []int
	Stats() core.EngineStats
	FailureStats() core.FailureStats
	Degraded() bool
	NumAlgorithms() int
	AlgorithmName(i int) string
	LeaseTimeout() time.Duration
}

// shardedEngine is the optional extension a sharded engine provides:
// the server pins each worker session to one shard at the handshake, so
// a session's leases stay on one selector replica and one lease table.
type shardedEngine interface {
	Engine
	Shards() int
	LeaseNOn(shard, n int) ([]core.Trial, error)
}

// DefaultMaxBatch caps the batch size a single LeaseN request may ask
// for; larger requests are clamped, not rejected.
const DefaultMaxBatch = 64

// ConfigHash summarizes a tuning run's algorithm roster for the
// handshake: workers refuse to feed measurements into a run whose
// algorithm indices mean something else.
func ConfigHash(algos []string) uint32 {
	h := crc32.NewIEEE()
	for _, a := range algos {
		h.Write([]byte(a))
		h.Write([]byte{0})
	}
	return h.Sum32()
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithTrialTarget makes LeaseN responses report Done once the engine
// has completed n trials, telling workers to exit. Zero (the default)
// serves leases indefinitely.
func WithTrialTarget(n int) ServerOption {
	return func(s *Server) { s.target = n }
}

// WithMaxBatch overrides DefaultMaxBatch.
func WithMaxBatch(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithConfigHash overrides the hash derived from the algorithm names,
// for deployments whose compatibility contract covers more than the
// roster (corpus version, measurement units, …).
func WithConfigHash(h uint32) ServerOption {
	return func(s *Server) { s.hash = h }
}

// Server serves one trial engine over TCP. It owns no tuning state
// itself: every request maps onto one engine call, so the engine's
// locking, lease reclamation and checkpoint journal work unchanged
// whether trials complete from a local goroutine or a remote worker.
type Server struct {
	eng      Engine
	sharded  shardedEngine // non-nil when eng has more than one shard
	hash     uint32
	epoch    int64
	target   int
	maxBatch int

	nextShard atomic.Uint64 // round-robin session → shard assignment

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps an engine for serving. The session epoch — stamped
// into every lease and checked on every report — is drawn from the
// wall clock at construction, so two server processes over the same
// checkpoint directory never share an epoch.
func NewServer(eng Engine, opts ...ServerOption) *Server {
	names := make([]string, eng.NumAlgorithms())
	for i := range names {
		names[i] = eng.AlgorithmName(i)
	}
	s := &Server{
		eng:      eng,
		hash:     ConfigHash(names),
		epoch:    time.Now().UnixNano(),
		maxBatch: DefaultMaxBatch,
		conns:    make(map[net.Conn]struct{}),
	}
	if se, ok := eng.(shardedEngine); ok && se.Shards() > 1 {
		s.sharded = se
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Engine returns the served engine (for inspection: Best, Stats, …).
func (s *Server) Engine() Engine { return s.eng }

// Epoch returns the session epoch of this server process.
func (s *Server) Epoch() int64 { return s.epoch }

// Hash returns the config hash offered in the handshake.
func (s *Server) Hash() uint32 { return s.hash }

// Serve accepts connections on ln until Close, handling each on its own
// goroutine. It returns nil after Close, or the first Accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("tuned: Serve on a closed server")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting, closes every live connection, and waits for
// the handlers to drain. The engine is left untouched: outstanding
// leases expire on their own deadlines, and a resumed server picks the
// run up from the journal.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs one connection: handshake, then a request/response loop.
// On a sharded engine the session is pinned to one shard, assigned
// round-robin across connections, so all its leases come from one
// selector replica.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if !s.handshake(conn) {
		return
	}
	shard := 0
	if s.sharded != nil {
		shard = int((s.nextShard.Add(1) - 1) % uint64(s.sharded.Shards()))
	}
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // disconnect, or a frame this protocol can't resync from
		}
		if !s.dispatch(conn, shard, typ, payload) {
			return
		}
	}
}

// handshake validates the client Hello and answers with the server's
// capabilities, reporting whether the connection may proceed.
func (s *Server) handshake(conn net.Conn) bool {
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		return false
	}
	if typ != wire.THello {
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{Code: wire.CodeBadRequest, Msg: "expected hello"})
		return false
	}
	var h wire.Hello
	if err := wire.Unmarshal(payload, &h); err != nil {
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}
	if h.Proto != wire.Version {
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: fmt.Sprintf("protocol version %d, server speaks %d", h.Proto, wire.Version)})
		return false
	}
	if h.Hash != 0 && h.Hash != s.hash {
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{
			Code: wire.CodeConfigMismatch,
			Msg:  fmt.Sprintf("config hash %08x, server runs %08x", h.Hash, s.hash)})
		return false
	}
	names := make([]string, s.eng.NumAlgorithms())
	for i := range names {
		names[i] = s.eng.AlgorithmName(i)
	}
	ack := wire.HelloAck{
		Proto:      wire.Version,
		Hash:       s.hash,
		Epoch:      s.epoch,
		Algos:      names,
		LeaseTTLMS: s.eng.LeaseTimeout().Milliseconds(),
	}
	return wire.WriteMsg(conn, wire.THelloAck, ack) == nil
}

// dispatch serves one request frame, reporting whether the connection
// should stay open.
func (s *Server) dispatch(conn net.Conn, shard int, typ wire.Type, payload []byte) bool {
	switch typ {
	case wire.TLeaseN:
		var req wire.LeaseNReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, err)
		}
		return s.serveLeaseN(conn, shard, req)
	case wire.TCompleteN:
		var req wire.CompleteNReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, err)
		}
		return s.serveCompleteN(conn, req)
	case wire.TFailN:
		var req wire.FailNReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, err)
		}
		return s.serveFailN(conn, req)
	case wire.THeartbeat:
		var req wire.HeartbeatReq
		if err := wire.Unmarshal(payload, &req); err != nil {
			return s.badRequest(conn, err)
		}
		return s.serveHeartbeat(conn, req)
	case wire.TBest:
		return s.serveBest(conn)
	case wire.TStats:
		return s.serveStats(conn)
	default:
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{
			Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected frame %s", typ)})
		return false
	}
}

func (s *Server) badRequest(conn net.Conn, err error) bool {
	wire.WriteMsg(conn, wire.TError, wire.ErrorResp{Code: wire.CodeBadRequest, Msg: err.Error()})
	return false
}

func (s *Server) serveLeaseN(conn net.Conn, shard int, req wire.LeaseNReq) bool {
	resp := wire.LeaseNResp{Epoch: s.epoch}
	if s.target > 0 && s.eng.Iterations() >= s.target {
		resp.Done = true
		return wire.WriteMsg(conn, wire.TTrials, resp) == nil
	}
	n := req.N
	if n < 1 {
		n = 1
	}
	if n > s.maxBatch {
		n = s.maxBatch
	}
	var trials []core.Trial
	var err error
	if s.sharded != nil {
		trials, err = s.sharded.LeaseNOn(shard, n)
	} else {
		trials, err = s.eng.LeaseN(n)
	}
	switch {
	case errors.Is(err, core.ErrTooManyInFlight):
		resp.RetryMS = 10
	case err != nil:
		wire.WriteMsg(conn, wire.TError, wire.ErrorResp{Code: wire.CodeInternal, Msg: err.Error()})
		return false
	}
	for _, tr := range trials {
		wt := wire.Trial{
			ID:          tr.ID,
			Algo:        tr.Algo,
			Config:      tr.Config,
			Speculative: tr.Speculative,
			Pinned:      tr.Pinned,
		}
		if !tr.Deadline.IsZero() {
			wt.DeadlineMS = tr.Deadline.UnixMilli()
		}
		resp.Trials = append(resp.Trials, wt)
	}
	return wire.WriteMsg(conn, wire.TTrials, resp) == nil
}

// serveCompleteN applies a completion batch. Reports from another epoch
// (leases issued by a dead server process, possibly colliding with
// re-issued trial IDs) are dropped wholesale — acknowledged, never
// applied.
func (s *Server) serveCompleteN(conn net.Conn, req wire.CompleteNReq) bool {
	var ack wire.AckResp
	if req.Epoch != s.epoch {
		for _, r := range req.Results {
			ack.Dropped = append(ack.Dropped, r.ID)
		}
		return wire.WriteMsg(conn, wire.TAck, ack) == nil
	}
	results := make([]core.TrialResult, len(req.Results))
	for i, r := range req.Results {
		results[i] = core.TrialResult{ID: r.ID, Value: r.Value}
	}
	for i, err := range s.eng.CompleteN(results) {
		if err == nil {
			ack.Applied = append(ack.Applied, results[i].ID)
		} else {
			ack.Dropped = append(ack.Dropped, results[i].ID)
		}
	}
	return wire.WriteMsg(conn, wire.TAck, ack) == nil
}

func (s *Server) serveFailN(conn net.Conn, req wire.FailNReq) bool {
	var ack wire.AckResp
	if req.Epoch != s.epoch {
		for _, f := range req.Fails {
			ack.Dropped = append(ack.Dropped, f.ID)
		}
		return wire.WriteMsg(conn, wire.TAck, ack) == nil
	}
	fails := make([]core.TrialFailure, len(req.Fails))
	for i, f := range req.Fails {
		kind, ok := guard.KindFromString(f.Kind)
		if !ok {
			kind = guard.Invalid
		}
		fails[i] = core.TrialFailure{ID: f.ID, Failure: guard.Failure{
			Kind:    kind,
			Err:     errors.New(f.Msg),
			Penalty: f.Penalty,
		}}
	}
	for i, err := range s.eng.FailN(fails) {
		if err == nil {
			ack.Applied = append(ack.Applied, fails[i].ID)
		} else {
			ack.Dropped = append(ack.Dropped, fails[i].ID)
		}
	}
	return wire.WriteMsg(conn, wire.TAck, ack) == nil
}

func (s *Server) serveHeartbeat(conn net.Conn, req wire.HeartbeatReq) bool {
	var resp wire.HeartbeatResp
	if req.Epoch == s.epoch {
		for i, ok := range s.eng.Heartbeat(req.IDs) {
			if ok {
				resp.Alive = append(resp.Alive, req.IDs[i])
			}
		}
	}
	// Another epoch's leases are all dead here by definition: empty Alive.
	return wire.WriteMsg(conn, wire.THeartbeatAck, resp) == nil
}

func (s *Server) serveBest(conn net.Conn) bool {
	algo, cfg, val := s.eng.Best()
	resp := wire.BestResp{Algo: algo, Iterations: s.eng.Iterations()}
	if algo >= 0 {
		// Before any completion val is +Inf, which JSON cannot carry;
		// Algo == -1 already says "no best yet", so Value stays zero.
		resp.Name = s.eng.AlgorithmName(algo)
		resp.Config = cfg
		resp.Value = val
	}
	return wire.WriteMsg(conn, wire.TBestAck, resp) == nil
}

func (s *Server) serveStats(conn net.Conn) bool {
	st := s.eng.Stats()
	resp := wire.StatsResp{
		Leased:     st.Leased,
		Completed:  st.Completed,
		Failed:     st.Failed,
		Expired:    st.Expired,
		InFlight:   st.InFlight,
		Iterations: s.eng.Iterations(),
		Counts:     s.eng.Counts(),
		Degraded:   s.eng.Degraded(),
	}
	return wire.WriteMsg(conn, wire.TStatsAck, resp) == nil
}
