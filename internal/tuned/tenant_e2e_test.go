package tuned

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/tenant"
	"repro/internal/wire"
)

// The multi-tenant end-to-end scenario: four tenants share one server
// over real TCP, each driven by four workers against its own replayed
// sample bank with a distinct winning arm. The acceptance criteria:
//
//   - every tenant converges to the same winner as an isolated
//     single-tenant server run over the same bank (tenancy adds no
//     cross-talk);
//   - the server process is killed mid-run and a fresh registry over
//     the same root resumes every tenant from its own journal, behind
//     the workers' backs;
//   - a protocol-1 client with no tenant field still tunes against the
//     "default" tenant of the restarted server.

// rotateBank reassigns bank rows so the winning samples (row 2 of the
// e2e bank) land on arm (2+k) % len(bank) — each tenant gets the same
// cost distribution but a different correct answer, so any cross-tenant
// state leak shows up as a wrong winner.
func rotateBank(bank [][]float64, k int) [][]float64 {
	n := len(bank)
	out := make([][]float64, n)
	for i := range out {
		out[i] = bank[((i-k)%n+n)%n]
	}
	return out
}

func TestTenantLoopbackE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("full multi-tenant distributed session in -short mode")
	}
	const (
		iters            = 600
		workersPerTenant = 4
		seed             = 7
		leaseTTL         = 250 * time.Millisecond
	)
	algos, baseBank := e2eBank()
	tenants := []string{"default", "tenant-b", "tenant-c", "tenant-d"}
	banks := make([][][]float64, len(tenants))
	for k := range tenants {
		banks[k] = rotateBank(baseBank, k)
	}
	roster := func(string) ([]core.Algorithm, error) { return algos, nil }
	clientOpts := []ClientOption{WithRetry(40, 10*time.Millisecond, 200*time.Millisecond)}

	// runWorkers drives one tenant with a worker fleet until the server
	// reports Done, collecting worker errors.
	runWorkers := func(wg *sync.WaitGroup, errs chan<- error, addr, tenantName string, measure core.Measure) {
		for i := 0; i < workersPerTenant; i++ {
			batch := 1 + i%4
			wg.Add(1)
			go func() {
				defer wg.Done()
				opts := clientOpts
				if tenantName != "" {
					opts = append(append([]ClientOption(nil), opts...), WithTenant(tenantName))
				}
				c, err := Dial(addr, opts...)
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				w := &Worker{Client: c, Measure: measure, Batch: batch, HeartbeatEvery: 50 * time.Millisecond}
				if _, err := w.Run(context.Background()); err != nil {
					errs <- err
				}
			}()
		}
	}

	// References: four isolated single-tenant servers, one per bank.
	// Identical engine parameters, identical worker fleet shape.
	refWinner := make([]int, len(tenants))
	for k := range tenants {
		eng, err := core.NewConcurrentTuner(algos, nominal.NewEpsilonGreedy(0.10), nil, seed,
			core.WithLeaseTimeout(leaseTTL))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(eng, WithTrialTarget(iters))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		var wg sync.WaitGroup
		errs := make(chan error, workersPerTenant)
		runWorkers(&wg, errs, ln.Addr().String(), "", replayBank(banks[k], 0))
		wg.Wait()
		srv.Close()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		refWinner[k] = mostSelected(eng.Counts())
		if want := (2 + k) % len(algos); refWinner[k] != want {
			t.Fatalf("isolated reference %d: winner %s, the bank says %s",
				k, algos[refWinner[k]].Name, algos[want].Name)
		}
	}

	// The shared multi-tenant server, persistent so the restart can
	// resume every tenant from its own journal.
	root := t.TempDir()
	newRegistry := func() *tenant.Registry {
		reg, err := tenant.NewRegistry(tenant.Config{Root: root, Roster: roster})
		if err != nil {
			t.Fatal(err)
		}
		return reg
	}
	reg := newRegistry()
	for _, name := range tenants {
		spec := tenant.Spec{Name: name, Workload: "e2e",
			Engine: core.EngineSpec{Seed: seed, SnapshotEvery: 200, LeaseTimeoutMS: leaseTTL.Milliseconds()}}
		if err := reg.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewTenantServer(reg, WithTrialTarget(iters))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	var wg sync.WaitGroup
	errs := make(chan error, len(tenants)*workersPerTenant+4)
	for k, name := range tenants {
		runWorkers(&wg, errs, addr, name, replayBank(banks[k], time.Millisecond))
	}

	// The chaos controller: once a third of the total work is journaled,
	// kill the server and resume every tenant on the same address from a
	// brand-new registry over the same root.
	var (
		reg2      *tenant.Registry
		srv2      *Server
		restarted = make(chan struct{})
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(restarted)
		probe, err := Dial(addr, clientOpts...)
		if err != nil {
			errs <- err
			return
		}
		for {
			resp, err := probe.Tenants()
			if err == nil && resp.Iterations >= len(tenants)*iters/3 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		probe.Close()
		srv.Close()

		// What each tenant had completed when the process died; the
		// journal is fsynced per report, so the resumed engine may lose
		// at most the write that was in flight.
		atKill := make(map[string]int)
		for _, name := range tenants {
			eng, _, release, err := reg.Acquire(name)
			if err != nil {
				errs <- err
				return
			}
			atKill[name] = eng.Iterations()
			release()
		}

		reg2 = newRegistry()
		for _, name := range tenants {
			eng, _, release, err := reg2.Acquire(name)
			if err != nil {
				errs <- err
				return
			}
			if got := eng.Iterations(); got < atKill[name]-1 {
				t.Errorf("tenant %s resumed at iteration %d, journal should carry at least %d",
					name, got, atKill[name]-1)
			}
			release()
		}
		srv2 = NewTenantServer(reg2, WithTrialTarget(iters))
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			errs <- err
			return
		}
		go srv2.Serve(ln2)
	}()

	<-restarted
	if srv2 == nil {
		wg.Wait()
		t.Fatal("server was never restarted")
	}
	defer srv2.Close()

	// The v-prev leg, against the restarted server: a protocol-1 client
	// with no tenant field lands on "default" and still tunes.
	v1 := dialV1(t, addr)
	defer v1.close()
	ack := v1.hello(wire.Hello{Proto: 1, Name: "v1-e2e"})
	if ack.Epoch != reg2.Tenant("default").Epoch() {
		t.Error("v1 session not routed to the restarted default tenant")
	}
	lresp := v1.leaseN(2)
	if len(lresp.Trials) > 0 {
		creq := wire.CompleteNReq{Epoch: lresp.Epoch}
		for _, tr := range lresp.Trials {
			// Report the bank's own value for the arm so the v1 trials
			// are indistinguishable from the v2 fleet's.
			creq.Results = append(creq.Results, wire.Result{ID: tr.ID, Value: banks[0][tr.Algo][0]})
		}
		cack := v1.completeN(creq)
		if len(cack.Applied) != len(creq.Results) {
			t.Errorf("v1 completions on restarted server: applied=%v dropped=%v", cack.Applied, cack.Dropped)
		}
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Per-tenant acceptance: full iteration count, winner parity with
	// the isolated reference, and mutually distinct winners.
	for k, name := range tenants {
		eng, _, release, err := reg2.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.Iterations(); got < iters {
			t.Errorf("tenant %s finished at %d iterations, want >= %d", name, got, iters)
		}
		winner := mostSelected(eng.Counts())
		release()
		if winner != refWinner[k] {
			t.Errorf("tenant %s winner = %s, isolated reference says %s",
				name, algos[winner].Name, algos[refWinner[k]].Name)
		}
	}
}
