package tuned

import (
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/tenant"
	"repro/internal/wire"
)

// testRegistry builds a persistent registry with the given tenants over
// the sleep roster.
func testRegistry(t *testing.T, root string, names ...string) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(tenant.Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		spec := tenant.Spec{Name: n, Workload: "sleep",
			Engine: core.EngineSpec{Seed: 3, SnapshotEvery: 50, LeaseTimeoutMS: 250}}
		if err := reg.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func startTenantServer(t *testing.T, reg *tenant.Registry, opts ...ServerOption) (*Server, string) {
	t.Helper()
	srv := NewTenantServer(reg, opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func TestTenantHandshakeRouting(t *testing.T) {
	reg := testRegistry(t, t.TempDir(), "default", "team-a")
	_, addr := startTenantServer(t, reg)

	// An explicit tenant lands on that tenant.
	ca, err := Dial(addr, WithTenant("team-a"))
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	if got := ca.Epoch(); got != reg.Tenant("team-a").Epoch() {
		t.Fatalf("team-a session epoch %d, want tenant epoch %d", got, reg.Tenant("team-a").Epoch())
	}

	// No tenant lands on "default".
	cd, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()
	if got := cd.Epoch(); got != reg.Tenant("default").Epoch() {
		t.Fatalf("default session epoch %d, want tenant epoch %d", got, reg.Tenant("default").Epoch())
	}
	if cd.Epoch() == ca.Epoch() {
		t.Fatal("two tenants share an epoch")
	}

	// An unknown tenant is rejected at the handshake.
	_, err = Dial(addr, WithTenant("ghost"))
	re, ok := err.(*RemoteError)
	if !ok || re.Code != wire.CodeUnknownTenant {
		t.Fatalf("unknown tenant dial: %v, want RemoteError %d", err, wire.CodeUnknownTenant)
	}

	// The aggregate view lists both tenants.
	resp, err := ca.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tenants) != 2 || resp.Tenants[0].Name != "default" || resp.Tenants[1].Name != "team-a" {
		t.Fatalf("aggregate view %+v, want [default team-a]", resp.Tenants)
	}
}

// TestWrongTenantReportsRejected: trial IDs leased from one tenant are
// dropped — never applied — when reported against another, whichever
// epoch the report carries.
func TestWrongTenantReportsRejected(t *testing.T) {
	reg := testRegistry(t, t.TempDir(), "default", "team-a", "team-b")
	_, addr := startTenantServer(t, reg)

	ca, err := Dial(addr, WithTenant("team-a"))
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := Dial(addr, WithTenant("team-b"))
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	lb, err := ca.LeaseN(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Trials) == 0 {
		t.Fatal("no trials leased")
	}
	results := make([]core.TrialResult, len(lb.Trials))
	for i, tr := range lb.Trials {
		results[i] = core.TrialResult{ID: tr.ID, Value: 1}
	}

	// Report A's trials through B's session under A's epoch: B's tenant
	// runs another epoch, so the whole batch is dropped.
	applied, dropped, err := cb.CompleteN(lb.Epoch, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 0 || len(dropped) != len(results) {
		t.Fatalf("cross-tenant report with foreign epoch: applied=%v dropped=%v", applied, dropped)
	}

	// Under B's own epoch the IDs are unknown to B's engine: dropped too.
	applied, dropped, err = cb.CompleteN(cb.Epoch(), results)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 0 || len(dropped) != len(results) {
		t.Fatalf("cross-tenant report with own epoch: applied=%v dropped=%v", applied, dropped)
	}

	// The same batch through A's own session applies cleanly.
	applied, _, err = ca.CompleteN(lb.Epoch, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != len(results) {
		t.Fatalf("own-tenant report applied %d of %d", len(applied), len(results))
	}
}

// TestDrainCheckpointsEveryTenant: Drain must write a final checkpoint
// for every resident tenant — not just one engine — in deterministic
// (sorted) order, so a SIGTERM'd multi-tenant server loses nothing.
func TestDrainCheckpointsEveryTenant(t *testing.T) {
	root := t.TempDir()
	names := []string{"alpha", "beta", "gamma"}
	reg := testRegistry(t, root, names...)
	srv, addr := startTenantServer(t, reg)

	// Complete a few trials on each tenant so every engine is resident
	// and has state worth snapshotting (below SnapshotEvery, so nothing
	// has checkpointed on its own).
	for _, n := range names {
		c, err := Dial(addr, WithTenant(n))
		if err != nil {
			t.Fatal(err)
		}
		lb, err := c.LeaseN(3)
		if err != nil {
			t.Fatal(err)
		}
		results := make([]core.TrialResult, len(lb.Trials))
		for i, tr := range lb.Trials {
			results[i] = core.TrialResult{ID: tr.ID, Value: 2}
		}
		if _, _, err := c.CompleteN(lb.Epoch, results); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if got := reg.Resident(); got != len(names) {
		t.Fatalf("resident=%d, want %d", got, len(names))
	}

	if err := srv.Drain(2 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, n := range names {
		if gens := checkpoint.Generations(filepath.Join(root, n, "ckpt")); len(gens) == 0 {
			t.Errorf("tenant %s has no checkpoint after drain", n)
		}
	}

	// Deterministic drain order: CheckpointAll reports sorted names.
	order, err := reg.CheckpointAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("checkpoint order %v not sorted", order)
		}
	}
}

// v1Client is a hand-rolled protocol-1 client: it writes v1-stamped
// frames and refuses reply frames not stamped v1, exactly as an old
// binary's decoder would. It exists to prove the backward-compatibility
// contract without depending on the current Client.
type v1Client struct {
	t    *testing.T
	conn net.Conn
}

func dialV1(t *testing.T, addr string) *v1Client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &v1Client{t: t, conn: conn}
}

func (c *v1Client) close() { c.conn.Close() }

func (c *v1Client) write(typ wire.Type, v wire.Payload) {
	c.t.Helper()
	frame, err := wire.EncodeV(1, typ, v)
	if err != nil {
		c.t.Fatal(err)
	}
	if _, err := c.conn.Write(frame); err != nil {
		c.t.Fatal(err)
	}
}

// read returns the next frame, asserting the v1 version stamp a v1
// decoder would enforce (the current ReadFrame tolerates both, so the
// raw header byte is checked instead).
func (c *v1Client) read() (wire.Type, []byte) {
	c.t.Helper()
	hdr := make([]byte, wire.HeaderSize)
	if _, err := io.ReadFull(c.conn, hdr); err != nil {
		c.t.Fatal(err)
	}
	if hdr[4] != 1 {
		c.t.Fatalf("reply frame stamped v%d, a v1 client would refuse it", hdr[4])
	}
	n := int(hdr[8])<<24 | int(hdr[9])<<16 | int(hdr[10])<<8 | int(hdr[11])
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.conn, payload); err != nil {
		c.t.Fatal(err)
	}
	return wire.Type(hdr[5]), payload
}

func (c *v1Client) roundTrip(reqType wire.Type, req wire.Payload, respType wire.Type, resp wire.Payload) {
	c.t.Helper()
	c.write(reqType, req)
	typ, payload := c.read()
	if typ != respType {
		c.t.Fatalf("%s answered with %s, want %s", reqType, typ, respType)
	}
	if err := resp.DecodeFrom(payload); err != nil {
		c.t.Fatal(err)
	}
}

func (c *v1Client) hello(h wire.Hello) wire.HelloAck {
	c.t.Helper()
	var ack wire.HelloAck
	c.roundTrip(wire.THello, &h, wire.THelloAck, &ack)
	return ack
}

func (c *v1Client) leaseN(n int) wire.LeaseNResp {
	c.t.Helper()
	var resp wire.LeaseNResp
	c.roundTrip(wire.TLeaseN, &wire.LeaseNReq{N: n}, wire.TTrials, &resp)
	return resp
}

func (c *v1Client) completeN(req wire.CompleteNReq) wire.AckResp {
	c.t.Helper()
	var ack wire.AckResp
	c.roundTrip(wire.TCompleteN, &req, wire.TAck, &ack)
	return ack
}

// TestVPrevClientOnDefaultTenant is the backward-compatibility leg: a
// protocol-1 client — v1-stamped frames, no tenant field in its Hello —
// must tune against the "default" tenant of a v2 multi-tenant server,
// and every reply frame must be stamped v1 so the old decoder accepts
// it.
func TestVPrevClientOnDefaultTenant(t *testing.T) {
	reg := testRegistry(t, t.TempDir(), "default", "team-a")
	_, addr := startTenantServer(t, reg)

	c := dialV1(t, addr)
	defer c.close()

	// The v1 Hello: proto 1, no tenant field (it predates the field).
	ack := c.hello(wire.Hello{Proto: 1, Name: "v1-worker"})
	if ack.Proto != 1 {
		t.Fatalf("ack.Proto = %d for a v1 session", ack.Proto)
	}
	if ack.Epoch != reg.Tenant("default").Epoch() {
		t.Fatal("v1 session not routed to the default tenant")
	}

	// Lease and complete one batch through v1 frames: the old client
	// still tunes.
	lresp := c.leaseN(2)
	if len(lresp.Trials) == 0 {
		t.Fatal("v1 client leased no trials")
	}
	creq := wire.CompleteNReq{Epoch: lresp.Epoch}
	for _, tr := range lresp.Trials {
		creq.Results = append(creq.Results, wire.Result{ID: tr.ID, Value: 1.5})
	}
	cack := c.completeN(creq)
	if len(cack.Applied) != len(creq.Results) {
		t.Fatalf("v1 completions applied=%v dropped=%v", cack.Applied, cack.Dropped)
	}

	// And the work landed on the default tenant, nowhere else.
	eng, _, release, err := reg.Acquire("default")
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Iterations()
	release()
	if got != len(creq.Results) {
		t.Fatalf("default tenant at %d iterations, want %d", got, len(creq.Results))
	}
}
