package tuned

import (
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
)

// testAlgos is a small mixed roster: a parameterless arm and a tunable
// one, with deterministic synthetic measurements.
func testAlgos() []core.Algorithm {
	return []core.Algorithm{
		{Name: "plain"},
		{Name: "tuned", Space: param.NewSpace(param.NewRatio("alpha", 1, 10))},
	}
}

func testMeasure(algo int, cfg param.Config) float64 {
	v := float64(3 + 2*algo)
	for _, x := range cfg {
		v += 0.01 * x
	}
	return v
}

// startServer builds an engine + server on an ephemeral port and
// returns them with the address and a cleanup.
func startServer(t *testing.T, opts []core.EngineOption, sopts ...ServerOption) (*Server, string) {
	t.Helper()
	eng, err := core.NewConcurrentTuner(testAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, sopts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func TestHandshakeAndRoster(t *testing.T) {
	srv, addr := startServer(t, nil)
	c, err := Dial(addr, WithClientName("t"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	algos := c.Algos()
	if len(algos) != 2 || algos[0] != "plain" || algos[1] != "tuned" {
		t.Fatalf("Algos() = %v", algos)
	}
	if c.Epoch() != srv.Epoch() {
		t.Fatalf("client epoch %d, server %d", c.Epoch(), srv.Epoch())
	}
	if c.LeaseTTL() != core.DefaultLeaseTimeout {
		t.Fatalf("LeaseTTL() = %v, want %v", c.LeaseTTL(), core.DefaultLeaseTimeout)
	}
}

func TestHandshakeConfigMismatch(t *testing.T) {
	_, addr := startServer(t, nil)
	_, err := Dial(addr, WithExpectedHash(0xdeadbeef), WithRetry(0, time.Millisecond, time.Millisecond))
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != 409 {
		t.Fatalf("Dial with wrong hash = %v, want RemoteError 409", err)
	}
}

func TestLeaseCompleteRoundTrip(t *testing.T) {
	srv, addr := startServer(t, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	lb, err := c.LeaseN(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Trials) != 4 || lb.Epoch != srv.Epoch() || lb.Done {
		t.Fatalf("LeaseN = %d trials, epoch %d, done %v", len(lb.Trials), lb.Epoch, lb.Done)
	}
	var results []core.TrialResult
	for _, tr := range lb.Trials {
		if tr.Deadline.IsZero() {
			t.Fatalf("trial %d has no deadline under the default TTL", tr.ID)
		}
		results = append(results, core.TrialResult{ID: tr.ID, Value: testMeasure(tr.Algo, tr.Config)})
	}
	applied, dropped, err := c.CompleteN(lb.Epoch, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 4 || len(dropped) != 0 {
		t.Fatalf("CompleteN applied %d dropped %d, want 4/0", len(applied), len(dropped))
	}
	// A duplicate report is acknowledged but dropped — idempotency over
	// the wire.
	applied, dropped, err = c.CompleteN(lb.Epoch, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 0 || len(dropped) != 4 {
		t.Fatalf("duplicate CompleteN applied %d dropped %d, want 0/4", len(applied), len(dropped))
	}
	if it := srv.Engine().Iterations(); it != 4 {
		t.Fatalf("engine iterations = %d, want 4 (duplicates never double-count)", it)
	}

	best, err := c.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Algo < 0 || best.Iterations != 4 || best.Name == "" {
		t.Fatalf("Best() = %+v", best)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 4 || st.Leased != 4 || st.InFlight != 0 {
		t.Fatalf("Stats() = %+v", st)
	}
}

// TestWrongEpochDropped: reports stamped with another server session's
// epoch are acknowledged but never applied.
func TestWrongEpochDropped(t *testing.T) {
	srv, addr := startServer(t, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lb, err := c.LeaseN(2)
	if err != nil {
		t.Fatal(err)
	}
	stale := lb.Epoch + 1
	applied, dropped, err := c.CompleteN(stale, []core.TrialResult{{ID: lb.Trials[0].ID, Value: 1}})
	if err != nil || len(applied) != 0 || len(dropped) != 1 {
		t.Fatalf("stale-epoch CompleteN = (%v, %v, %v), want all dropped", applied, dropped, err)
	}
	if alive, _ := c.Heartbeat(stale, []uint64{lb.Trials[0].ID}); len(alive) != 0 {
		t.Fatalf("stale-epoch Heartbeat reported %v alive", alive)
	}
	if fAppl, fDrop, err := c.FailN(stale, []core.TrialFailure{{ID: lb.Trials[1].ID}}); err != nil || len(fAppl) != 0 || len(fDrop) != 1 {
		t.Fatalf("stale-epoch FailN = (%v, %v, %v), want all dropped", fAppl, fDrop, err)
	}
	if st := srv.Engine().Stats(); st.Completed != 0 || st.Failed != 0 || st.InFlight != 2 {
		t.Fatalf("engine touched by stale-epoch reports: %+v", st)
	}
	// The genuine epoch still works.
	applied, _, err = c.CompleteN(lb.Epoch, []core.TrialResult{{ID: lb.Trials[0].ID, Value: 1}})
	if err != nil || len(applied) != 1 {
		t.Fatalf("live-epoch CompleteN = (%v, %v)", applied, err)
	}
}

// TestWorkerRunsToTarget: four workers drain a trial target through the
// full wire loop and the engine accounts every trial.
func TestWorkerRunsToTarget(t *testing.T) {
	const target = 120
	srv, addr := startServer(t, nil, WithTrialTarget(target))
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	for i := 0; i < 4; i++ {
		batch := 1 + i*2 // mixed batch sizes: 1, 3, 5, 7
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			w := &Worker{Client: c, Measure: testMeasure, Batch: batch}
			n, err := w.Run(context.Background())
			if err != nil {
				t.Errorf("worker: %v", err)
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	eng := srv.Engine()
	if it := eng.Iterations(); it < target {
		t.Fatalf("engine iterations = %d, want >= %d", it, target)
	}
	if st := eng.Stats(); st.Completed != uint64(total) {
		t.Fatalf("engine completed %d, workers reported %d", st.Completed, total)
	}
	if algo, _, _ := eng.Best(); algo != 0 {
		t.Fatalf("best algo = %d, want 0 (the cheap arm)", algo)
	}
}

// TestWorkerPanicBecomesFailN: a panicking measurement reaches the
// server as a failed trial, not a dead connection.
func TestWorkerPanicBecomesFailN(t *testing.T) {
	srv, addr := startServer(t, nil, WithTrialTarget(20))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := 0
	w := &Worker{Client: c, Batch: 2, Measure: func(algo int, cfg param.Config) float64 {
		n++
		if n%5 == 0 {
			panic("boom")
		}
		if n%7 == 0 {
			return math.NaN() // must travel as a FailN, JSON can't carry it
		}
		return testMeasure(algo, cfg)
	}}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := srv.Engine().Stats()
	if st.Failed == 0 {
		t.Fatalf("no failures recorded: %+v", st)
	}
	fs := srv.Engine().FailureStats()
	if fs.Panics == 0 {
		t.Fatalf("panics not classified: %+v", fs)
	}
}

// TestClientReconnectAcrossRestart: a server restart inside the retry
// budget is invisible to the caller except through the changed epoch.
func TestClientReconnectAcrossRestart(t *testing.T) {
	eng, err := core.NewConcurrentTuner(testAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv1.Serve(ln)

	c, err := Dial(addr, WithRetry(20, 10*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lb, err := c.LeaseN(1)
	if err != nil {
		t.Fatal(err)
	}
	epoch1 := lb.Epoch

	srv1.Close()
	// Restart on the same address after a gap the backoff must ride out.
	time.Sleep(50 * time.Millisecond)
	eng2, err := core.NewConcurrentTuner(testAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(eng2)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()

	lb2, err := c.LeaseN(1)
	if err != nil {
		t.Fatalf("LeaseN across restart: %v", err)
	}
	if lb2.Epoch == epoch1 {
		t.Fatal("epoch unchanged across restart")
	}
	// The pre-restart lease completes against the new server as a
	// harmless drop: its epoch is dead.
	applied, dropped, err := c.CompleteN(epoch1, []core.TrialResult{{ID: lb.Trials[0].ID, Value: 1}})
	if err != nil || len(applied) != 0 || len(dropped) != 1 {
		t.Fatalf("old-epoch completion after restart = (%v, %v, %v), want dropped", applied, dropped, err)
	}
	if st := eng2.Stats(); st.Completed != 0 {
		t.Fatalf("old-epoch completion reached the new engine: %+v", st)
	}
}

// TestLeaseNClampedToMaxBatch: oversized requests are clamped, not
// refused.
func TestLeaseNClampedToMaxBatch(t *testing.T) {
	_, addr := startServer(t, nil, WithMaxBatch(3))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lb, err := c.LeaseN(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Trials) != 3 {
		t.Fatalf("LeaseN(100) under max batch 3 leased %d", len(lb.Trials))
	}
}

// TestRetryHintUnderMaxInFlight: when the engine's in-flight cap is
// reached the server answers with a backoff hint instead of an error.
func TestRetryHintUnderMaxInFlight(t *testing.T) {
	_, addr := startServer(t, []core.EngineOption{core.WithMaxInFlight(2)})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.LeaseN(2); err != nil {
		t.Fatal(err)
	}
	lb, err := c.LeaseN(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Trials) != 0 || lb.Retry <= 0 {
		t.Fatalf("at the cap: %d trials, retry %v, want empty batch with a hint", len(lb.Trials), lb.Retry)
	}
}
