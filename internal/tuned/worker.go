package tuned

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
)

// Worker is the remote evaluation loop: lease a batch, measure every
// trial, report the batch, repeat. It is the process-boundary analogue
// of one core.RunPool goroutine — all tuning decisions stay on the
// server; the worker only runs the measurement function it was deployed
// with.
//
// Failure handling mirrors the in-process guard path: a panicking
// measurement becomes a FailN entry of kind panic, a non-finite sample
// one of kind invalid (JSON cannot carry NaN, and the engine would
// penalize it anyway). If the worker dies instead, its leases expire on
// the server and are reclaimed as timeouts — the same outcome, decided
// by the other side.
type Worker struct {
	// Client connects to the tuning server. Required.
	Client *Client
	// Measure evaluates one trial. Required.
	Measure core.Measure
	// Batch is the LeaseN/CompleteN batch size (≤ 0 means 1). Larger
	// batches amortize the network round trip exactly as LeaseN
	// amortizes the engine's lock round trip — at the price of staler
	// proposals within a batch.
	Batch int
	// MaxTrials stops the worker after completing this many trials
	// (0 = run until the server reports Done or ctx is cancelled).
	MaxTrials int
	// HeartbeatEvery is the interval at which outstanding leases are
	// extended while the batch is still measuring. Zero disables
	// heartbeats: then the lease TTL must exceed the worst-case batch
	// measurement time, or trials are reclaimed mid-measurement.
	HeartbeatEvery time.Duration
}

// Run drives the loop until the server reports Done, MaxTrials is
// reached, ctx is cancelled, or the client's retry budget is exhausted
// against an unreachable server. It returns the number of trials
// reported (applied or dropped).
//
// Cancellation is deliberately abrupt: a cancelled worker abandons the
// batch it holds without completing it, modelling a killed process.
// The server reclaims those leases at their deadlines.
func (w *Worker) Run(ctx context.Context) (int, error) {
	if w.Client == nil || w.Measure == nil {
		return 0, errors.New("tuned: Worker needs a Client and a Measure")
	}
	batch := w.Batch
	if batch < 1 {
		batch = 1
	}
	completed := 0
	for {
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		if w.MaxTrials > 0 && completed >= w.MaxTrials {
			return completed, nil
		}
		n := batch
		if w.MaxTrials > 0 && w.MaxTrials-completed < n {
			n = w.MaxTrials - completed
		}
		lb, err := w.Client.LeaseN(n)
		if err != nil {
			return completed, err
		}
		if lb.Done {
			return completed, nil
		}
		if len(lb.Trials) == 0 {
			retry := lb.Retry
			if retry <= 0 {
				retry = 2 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return completed, ctx.Err()
			case <-time.After(retry):
			}
			continue
		}
		results, fails, abandoned := w.measureBatch(ctx, lb)
		if abandoned {
			return completed, ctx.Err()
		}
		if len(results) > 0 {
			if _, _, err := w.Client.CompleteN(lb.Epoch, results); err != nil {
				return completed, err
			}
		}
		if len(fails) > 0 {
			if _, _, err := w.Client.FailN(lb.Epoch, fails); err != nil {
				return completed, err
			}
		}
		completed += len(results) + len(fails)
	}
}

// measureBatch runs every trial of a batch, heartbeating the not-yet-
// measured leases in the background. abandoned reports a cancellation
// mid-batch: the remaining leases are left to expire server-side.
func (w *Worker) measureBatch(ctx context.Context, lb LeaseBatch) (results []core.TrialResult, fails []core.TrialFailure, abandoned bool) {
	var (
		mu      sync.Mutex // guards outstanding under the heartbeat goroutine
		outst   = make([]uint64, 0, len(lb.Trials))
		stopHB  chan struct{}
		hbWG    sync.WaitGroup
		dropped map[uint64]bool
	)
	for _, tr := range lb.Trials {
		outst = append(outst, tr.ID)
	}
	if w.HeartbeatEvery > 0 {
		stopHB = make(chan struct{})
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(w.HeartbeatEvery)
			defer t.Stop()
			for {
				select {
				case <-stopHB:
					return
				case <-t.C:
					mu.Lock()
					ids := append([]uint64(nil), outst...)
					mu.Unlock()
					if len(ids) == 0 {
						return
					}
					alive, err := w.Client.Heartbeat(lb.Epoch, ids)
					if err != nil {
						continue // transient; the next tick retries
					}
					live := make(map[uint64]bool, len(alive))
					for _, id := range alive {
						live[id] = true
					}
					mu.Lock()
					if dropped == nil {
						dropped = make(map[uint64]bool)
					}
					for _, id := range ids {
						if !live[id] {
							dropped[id] = true
						}
					}
					mu.Unlock()
				}
			}
		}()
	}

	for _, tr := range lb.Trials {
		if ctx.Err() != nil {
			abandoned = true
			break
		}
		mu.Lock()
		dead := dropped[tr.ID]
		mu.Unlock()
		if dead {
			// The server reclaimed this lease (e.g. a previous trial of
			// the batch overran the TTL without heartbeats extending this
			// one in time); measuring it would be wasted work.
			continue
		}
		value, fail := w.measureOne(tr)
		mu.Lock()
		for i, id := range outst {
			if id == tr.ID {
				outst = append(outst[:i], outst[i+1:]...)
				break
			}
		}
		mu.Unlock()
		if fail != nil {
			fails = append(fails, core.TrialFailure{ID: tr.ID, Failure: *fail})
		} else {
			results = append(results, core.TrialResult{ID: tr.ID, Value: value})
		}
	}
	if stopHB != nil {
		close(stopHB)
		hbWG.Wait()
	}
	return results, fails, abandoned
}

// measureOne runs one measurement with panic and non-finite-sample
// containment.
func (w *Worker) measureOne(tr core.Trial) (value float64, fail *guard.Failure) {
	defer func() {
		if r := recover(); r != nil {
			fail = &guard.Failure{Kind: guard.Panic, Algo: tr.Algo, Err: fmt.Errorf("tuned: measurement panic: %v", r)}
		}
	}()
	v := w.Measure(tr.Algo, tr.Config)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, &guard.Failure{Kind: guard.Invalid, Algo: tr.Algo, Err: fmt.Errorf("tuned: non-finite measurement %v", v)}
	}
	return v, nil
}
