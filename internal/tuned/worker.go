package tuned

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/nominal"
)

// Worker is the remote evaluation loop: lease a batch, measure every
// trial, report the batch, repeat. It is the process-boundary analogue
// of one core.RunPool goroutine — all tuning decisions stay on the
// server; the worker only runs the measurement function it was deployed
// with.
//
// Failure handling mirrors the in-process guard path: a panicking
// measurement becomes a FailN entry of kind panic, a non-finite sample
// one of kind invalid (JSON cannot carry NaN, and the engine would
// penalize it anyway). If the worker dies instead, its leases expire on
// the server and are reclaimed as timeouts — the same outcome, decided
// by the other side.
type Worker struct {
	// Client connects to the tuning server. Required.
	Client *Client
	// Measure evaluates one trial. Required.
	Measure core.Measure
	// Batch is the LeaseN/CompleteN batch size (≤ 0 means 1). Larger
	// batches amortize the network round trip exactly as LeaseN
	// amortizes the engine's lock round trip — at the price of staler
	// proposals within a batch.
	Batch int
	// MaxTrials stops the worker after completing this many trials
	// (0 = run until the server reports Done or ctx is cancelled).
	MaxTrials int
	// HeartbeatEvery is the interval at which outstanding leases are
	// extended while the batch is still measuring. Zero disables
	// heartbeats: then the lease TTL must exceed the worst-case batch
	// measurement time, or trials are reclaimed mid-measurement.
	HeartbeatEvery time.Duration
	// IdleRetry is the wait before re-asking a server whose empty or
	// busy lease response carried no retry hint (≤ 0 means 2ms). The
	// actual sleep is uniformly jittered in (retry/2, retry] so idle
	// workers do not re-poll in lockstep.
	IdleRetry time.Duration
	// Fallback, when non-nil with a Selector, enables degraded mode:
	// instead of giving up when the client's retry budget exhausts, the
	// worker keeps measuring against a local tuner and folds what it
	// learned back into the server once the partition heals.
	Fallback *Fallback
	// ID identifies this worker in Absorb deduplication and calibration.
	// Zero (the default) draws a random ID on first use; set it
	// explicitly when a restarted worker process must be recognized as
	// its predecessor.
	ID uint64
	// CalibrateEvery enables worker-bias calibration: before the first
	// lease and again every CalibrateEvery reported trials the worker
	// measures the server's reference algorithm (HelloAck.RefAlgo, at a
	// nil config — Measure must tolerate that when calibration is on)
	// three times and reports the median, so the server can divide this
	// worker's costs by its speed factor relative to the fleet's fastest
	// member. Zero disables calibration.
	CalibrateEvery int
	// Pipeline overlaps the wire with the measurement: the next lease
	// request is already in flight while the current batch measures, and
	// completion reports are sent asynchronously instead of blocking the
	// loop on their acks. Pair it with a Client dialed WithPipeline so
	// the overlapping requests multiplex one connection; it also works
	// (less efficiently) over a pooled client. Degraded-mode fallback
	// behaves exactly as in the lockstep loop.
	Pipeline bool
	// RefMeasure, when set, replaces Measure for the calibration probe.
	// The reference must be a fixed workload: if the probe ran the live
	// (possibly drifting) input instead, a worker calibrating after an
	// input change would report an inflated reference and every later
	// cost it sends would be deflated below the fleet's true floor.
	RefMeasure func() float64

	local *core.Tuner           // lazily built degraded-mode tuner
	seq   uint64                // absorb sequence; advances only on success
	pend  []nominal.Observation // delta not yet absorbed by the server

	statMu sync.Mutex
	stats  WorkerStats
}

// Fallback configures the worker's degraded mode. While the server is
// unreachable the worker tunes *algorithmic choice only*: a local
// core.Tuner over the handshake roster with empty parameter spaces, so
// every algorithm runs at its initial configuration. Parameter search
// needs the server's phase-two state and does not continue locally; the
// selector's observation stream does, and is exactly what Merge (via
// the server's Absorb) can fold back in.
type Fallback struct {
	// Selector builds the local nominal selector. Required.
	Selector func() nominal.Selector
	// Seed seeds the local tuner.
	Seed int64
	// ProbeEvery is how often the degraded worker probes the server for
	// a healed partition (≤ 0 means 250ms). Probes are single attempts
	// without retries, so they stay cheap while the partition holds.
	ProbeEvery time.Duration
	// MaxBuffer bounds the unflushed observation buffer; beyond it the
	// oldest observations are dropped and counted in WorkerStats (the
	// selector itself keeps learning — only the replay delta is capped).
	// ≤ 0 means 4096.
	MaxBuffer int
}

// WorkerStats counts what a worker has done, including degraded-mode
// activity. Read it via Worker.Stats at any time.
type WorkerStats struct {
	// Reported counts trials measured under a server lease and reported
	// (applied or dropped).
	Reported int
	// DegradedTrials counts measurements taken locally while partitioned.
	DegradedTrials int
	// Absorbed counts locally-learned observations the server
	// acknowledged applying after reconnect.
	Absorbed int
	// Partitions counts entries into degraded mode.
	Partitions int
	// DroppedObs counts buffered observations discarded at MaxBuffer.
	DroppedObs int
	// Calibrations counts acknowledged reference-probe reports; Factor
	// is the speed factor from the latest one (0 until calibrated).
	Calibrations int
	Factor       float64
}

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.statMu.Lock()
	defer w.statMu.Unlock()
	return w.stats
}

func (w *Worker) bump(f func(*WorkerStats)) {
	w.statMu.Lock()
	f(&w.stats)
	w.statMu.Unlock()
}

// Run drives the loop until the server reports Done, MaxTrials is
// reached, ctx is cancelled, or the client's retry budget is exhausted
// against an unreachable server (with Fallback set the worker degrades
// instead of returning, and only gives up on cancellation or a
// permanent server error). It returns the number of trials reported
// under leases; degraded-mode work is accounted in Stats.
//
// Cancellation is deliberately abrupt: a cancelled worker abandons the
// batch it holds without completing it, modelling a killed process.
// The server reclaims those leases at their deadlines.
func (w *Worker) Run(ctx context.Context) (int, error) {
	if w.Client == nil || w.Measure == nil {
		return 0, errors.New("tuned: Worker needs a Client and a Measure")
	}
	batch := w.Batch
	if batch < 1 {
		batch = 1
	}
	if w.CalibrateEvery > 0 {
		w.Client.SetWorker(w.workerID())
	}
	if w.Pipeline {
		return w.runPipelined(ctx, batch)
	}
	completed := 0
	nextCal := 0 // calibrate before the first lease, then on the interval
	for {
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		if w.MaxTrials > 0 && completed >= w.MaxTrials {
			return completed, nil
		}
		if w.CalibrateEvery > 0 && completed >= nextCal {
			w.calibrate()
			nextCal = completed + w.CalibrateEvery
		}
		n := batch
		if w.MaxTrials > 0 && w.MaxTrials-completed < n {
			n = w.MaxTrials - completed
		}
		lb, err := w.Client.LeaseN(n)
		if err != nil {
			if !w.degradable(err) {
				return completed, err
			}
			if derr := w.runDegraded(ctx); derr != nil {
				return completed, derr
			}
			continue
		}
		if lb.Done {
			return completed, nil
		}
		if len(lb.Trials) == 0 {
			select {
			case <-ctx.Done():
				return completed, ctx.Err()
			case <-time.After(w.idleWait(lb.Retry)):
			}
			continue
		}
		results, fails, abandoned := w.measureBatch(ctx, lb)
		if abandoned {
			return completed, ctx.Err()
		}
		reported := 0
		err = nil
		if len(results) > 0 {
			if _, _, err = w.Client.CompleteN(lb.Epoch, results); err == nil {
				reported += len(results)
				results = nil
			}
		}
		if err == nil && len(fails) > 0 {
			if _, _, err = w.Client.FailN(lb.Epoch, fails); err == nil {
				reported += len(fails)
				fails = nil
			}
		}
		completed += reported
		w.bump(func(s *WorkerStats) { s.Reported += reported })
		if err != nil {
			if !w.degradable(err) {
				return completed, err
			}
			// The batch was measured but its report could not be
			// delivered. Its leases will expire server-side; preserve the
			// measurements as degraded-mode observations so the work is
			// not lost, then fall back.
			w.bufferUnreported(lb, results, fails)
			if derr := w.runDegraded(ctx); derr != nil {
				return completed, derr
			}
		}
	}
}

// pipelineReports bounds the completion acks a pipelined worker leaves
// outstanding before it blocks for the oldest one: enough to ride out
// ack latency, small enough that a failing server is noticed within a
// few batches.
const pipelineReports = 4

// runPipelined is the overlapped loop behind Worker.Pipeline: the next
// lease request is on the wire while the current batch measures, and
// completion reports settle asynchronously (at most pipelineReports
// outstanding). Accounting matches the lockstep loop — completed counts
// acked reports only — and a failed report is converted to
// degraded-mode observations exactly as there.
func (w *Worker) runPipelined(ctx context.Context, batch int) (int, error) {
	type leaseRes struct {
		lb  LeaseBatch
		err error
	}
	type ackRes struct {
		n       int // trials acked (applied or dropped)
		err     error
		lb      LeaseBatch
		results []core.TrialResult // unacked remainder on error
		fails   []core.TrialFailure
	}
	var (
		completed       = 0
		nextCal         = 0
		pendingReported = 0 // trials handed to in-flight reports
		measuring       = 0 // trials of the batch currently measuring
		inflight        []chan ackRes
		pendingLease    chan leaseRes
		firstErr        error
	)

	report := func(lb LeaseBatch, results []core.TrialResult, fails []core.TrialFailure) {
		ch := make(chan ackRes, 1)
		pendingReported += len(results) + len(fails)
		go func() {
			res := ackRes{lb: lb, results: results, fails: fails}
			if len(results) > 0 {
				if _, _, err := w.Client.CompleteN(lb.Epoch, results); err != nil {
					res.err = err
					ch <- res
					return
				}
				res.n += len(results)
				res.results = nil
			}
			if len(fails) > 0 {
				if _, _, err := w.Client.FailN(lb.Epoch, fails); err != nil {
					res.err = err
					ch <- res
					return
				}
				res.n += len(fails)
				res.fails = nil
			}
			ch <- res
		}()
		inflight = append(inflight, ch)
	}

	// drain settles outstanding reports down to limit, folding acked
	// counts into completed; a failed report's unacked remainder becomes
	// degraded-mode observations (when a Fallback exists to replay them).
	drain := func(limit int) {
		for len(inflight) > limit {
			res := <-inflight[0]
			inflight = inflight[1:]
			pendingReported -= res.n + len(res.results) + len(res.fails)
			completed += res.n
			if res.n > 0 {
				w.bump(func(s *WorkerStats) { s.Reported += res.n })
			}
			if res.err != nil {
				if firstErr == nil {
					firstErr = res.err
				}
				if w.degradable(res.err) {
					w.bufferUnreported(res.lb, res.results, res.fails)
				}
			}
		}
	}

	// startLease fires the next lease request, capped by what MaxTrials
	// still has room for counting everything not yet acked; false means
	// no room until reports settle.
	startLease := func() bool {
		n := batch
		if w.MaxTrials > 0 {
			if room := w.MaxTrials - completed - pendingReported - measuring; room < n {
				n = room
			}
		}
		if n < 1 {
			return false
		}
		ch := make(chan leaseRes, 1)
		go func() {
			lb, err := w.Client.LeaseN(n)
			ch <- leaseRes{lb, err}
		}()
		pendingLease = ch
		return true
	}

	// handleErr routes one failure like the lockstep loop: degrade when
	// a Fallback allows it, return otherwise.
	handleErr := func(err error) (resume bool, fatal error) {
		if !w.degradable(err) {
			return false, err
		}
		if derr := w.runDegraded(ctx); derr != nil {
			return false, derr
		}
		return true, nil
	}

	for {
		if err := ctx.Err(); err != nil {
			drain(0)
			return completed, err
		}
		drain(pipelineReports)
		if firstErr != nil {
			err := firstErr
			firstErr = nil
			if resume, fatal := handleErr(err); !resume {
				drain(0)
				return completed, fatal
			}
			continue
		}
		if w.MaxTrials > 0 && completed+pendingReported >= w.MaxTrials {
			drain(0)
			if firstErr != nil {
				continue // failed reports freed budget; decide again
			}
			if completed >= w.MaxTrials {
				return completed, nil
			}
			continue
		}
		if w.CalibrateEvery > 0 && completed >= nextCal {
			w.calibrate()
			nextCal = completed + w.CalibrateEvery
		}
		if pendingLease == nil && !startLease() {
			drain(0) // no lease room until the outstanding acks settle
			continue
		}
		var res leaseRes
		select {
		case <-ctx.Done():
			drain(0)
			return completed, ctx.Err()
		case res = <-pendingLease:
		}
		pendingLease = nil
		if res.err != nil {
			if resume, fatal := handleErr(res.err); !resume {
				drain(0)
				return completed, fatal
			}
			continue
		}
		lb := res.lb
		if lb.Done {
			drain(0)
			return completed, nil
		}
		if lb.SuggestMax > 0 && lb.SuggestMax < batch {
			// The server is rebalancing: peers starve behind this
			// worker's holdings, so shrink the ask instead of making the
			// server clamp every request.
			batch = lb.SuggestMax
		}
		if len(lb.Trials) == 0 {
			select {
			case <-ctx.Done():
				drain(0)
				return completed, ctx.Err()
			case <-time.After(w.idleWait(lb.Retry)):
			}
			continue
		}
		measuring = len(lb.Trials)
		startLease() // prefetch: the next batch flies while this one measures
		results, fails, abandoned := w.measureBatch(ctx, lb)
		measuring = 0
		if abandoned {
			drain(0)
			return completed, ctx.Err()
		}
		report(lb, results, fails)
	}
}

// idleWait turns an empty-lease retry hint into a jittered sleep: the
// hint (or IdleRetry, or 2ms) is the ceiling, and the wait is drawn
// uniformly from its upper half so a fleet of idle workers spreads out.
func (w *Worker) idleWait(hint time.Duration) time.Duration {
	retry := hint
	if retry <= 0 {
		retry = w.IdleRetry
	}
	if retry <= 0 {
		retry = 2 * time.Millisecond
	}
	return retry/2 + time.Duration(rand.Int63n(int64(retry/2)+1))
}

// degradable reports whether an error should push the worker into
// degraded mode rather than out of Run: transport exhaustion qualifies;
// explicit server answers (*RemoteError) and a closed client are
// permanent.
func (w *Worker) degradable(err error) bool {
	if w.Fallback == nil || w.Fallback.Selector == nil {
		return false
	}
	if errors.Is(err, ErrClosed) {
		return false
	}
	var re *RemoteError
	return !errors.As(err, &re)
}

// bufferUnreported converts an unreportable measured batch into
// degraded-mode observations, preserving the algorithm attribution the
// server would have recorded.
func (w *Worker) bufferUnreported(lb LeaseBatch, results []core.TrialResult, fails []core.TrialFailure) {
	algoOf := make(map[uint64]int, len(lb.Trials))
	for _, tr := range lb.Trials {
		algoOf[tr.ID] = tr.Algo
	}
	for _, r := range results {
		w.pend = append(w.pend, nominal.Observation{Arm: algoOf[r.ID], Value: r.Value})
	}
	for _, f := range fails {
		w.pend = append(w.pend, nominal.Observation{Arm: algoOf[f.ID], Value: f.Failure.Penalty, Failed: true})
	}
}

// calibrate runs the reference probe — three measurements of the
// server's reference algorithm, median-filtered so one scheduling
// hiccup cannot masquerade as a 3× slowdown — and reports it. Errors
// are swallowed: a failed probe or an unreachable server just leaves
// the previous factor in place until the next interval.
func (w *Worker) calibrate() {
	ref := core.Trial{Algo: w.Client.RefAlgo()}
	probe := func() (float64, *guard.Failure) { return w.measureOne(ref) }
	if w.RefMeasure != nil {
		probe = w.refOne
	}
	samples := make([]float64, 0, 3)
	for i := 0; i < 3; i++ {
		v, fail := probe()
		if fail != nil {
			return
		}
		samples = append(samples, v)
	}
	slices.Sort(samples)
	factor, _, err := w.Client.Calibrate(w.workerID(), samples[1])
	if err != nil {
		return
	}
	w.bump(func(s *WorkerStats) {
		s.Calibrations++
		s.Factor = factor
	})
}

// workerID returns the stable ID used in Absorb dedup, drawing a random
// one on first use. Run is single-goroutine, so no lock.
func (w *Worker) workerID() uint64 {
	if w.ID == 0 {
		w.ID = rand.Uint64() | 1
	}
	return w.ID
}

// runDegraded is the partition loop: measure against a local tuner over
// the handshake roster, probe the server, and on reconnect flush the
// accumulated observation delta via Absorb. Returns nil once the delta
// is fully flushed (the caller re-enters leased operation), or the
// context/permanent error that ended degraded mode.
func (w *Worker) runDegraded(ctx context.Context) error {
	fb := w.Fallback
	if w.local == nil {
		names := w.Client.Algos()
		if len(names) == 0 {
			return errors.New("tuned: degraded mode needs the handshake roster")
		}
		algos := make([]core.Algorithm, len(names))
		for i, name := range names {
			algos[i] = core.Algorithm{Name: name}
		}
		lt, err := core.NewTuner(algos, fb.Selector(), nil, fb.Seed,
			core.WithGuard(), core.WithoutHistory())
		if err != nil {
			return err
		}
		w.local = lt
	}
	probe := fb.ProbeEvery
	if probe <= 0 {
		probe = 250 * time.Millisecond
	}
	maxBuf := fb.MaxBuffer
	if maxBuf <= 0 {
		maxBuf = 4096
	}
	w.bump(func(s *WorkerStats) { s.Partitions++ })
	lastProbe := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		rec := w.local.Step(w.Measure)
		w.pend = append(w.pend, nominal.Observation{Arm: rec.Algo, Value: rec.Value, Failed: rec.Failed})
		if over := len(w.pend) - maxBuf; over > 0 {
			w.pend = w.pend[over:]
			w.bump(func(s *WorkerStats) { s.DroppedObs += over })
		}
		w.bump(func(s *WorkerStats) { s.DegradedTrials++ })
		if time.Since(lastProbe) < probe {
			continue
		}
		lastProbe = time.Now()
		if w.Client.Ping() != nil {
			continue // still partitioned
		}
		err := w.flushPending()
		if err == nil {
			return nil // reconnected, delta folded in; resume leasing
		}
		if !w.degradable(err) {
			return err
		}
		// The partition re-appeared mid-flush; whatever was not yet
		// acknowledged is still in pend. Keep measuring.
	}
}

// flushPending absorbs the buffered delta into the server in bounded
// chunks. Each chunk gets the next sequence number, which only advances
// after the server acknowledges it — so a retried chunk whose ack was
// lost is deduplicated server-side, and a transport failure leaves the
// unacknowledged tail in place for the next flush.
func (w *Worker) flushPending() error {
	const chunk = 512
	for len(w.pend) > 0 {
		n := min(chunk, len(w.pend))
		applied, duplicate, err := w.Client.Absorb(w.workerID(), w.seq+1, w.pend[:n])
		if err != nil {
			return err
		}
		w.seq++
		w.pend = w.pend[n:]
		if !duplicate {
			w.bump(func(s *WorkerStats) { s.Absorbed += applied })
		}
	}
	return nil
}

// measureBatch runs every trial of a batch, heartbeating the not-yet-
// measured leases in the background. abandoned reports a cancellation
// mid-batch: the remaining leases are left to expire server-side.
func (w *Worker) measureBatch(ctx context.Context, lb LeaseBatch) (results []core.TrialResult, fails []core.TrialFailure, abandoned bool) {
	var (
		mu      sync.Mutex // guards outstanding under the heartbeat goroutine
		outst   = make([]uint64, 0, len(lb.Trials))
		stopHB  chan struct{}
		hbWG    sync.WaitGroup
		dropped map[uint64]bool
	)
	for _, tr := range lb.Trials {
		outst = append(outst, tr.ID)
	}
	if w.HeartbeatEvery > 0 {
		stopHB = make(chan struct{})
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(w.HeartbeatEvery)
			defer t.Stop()
			for {
				select {
				case <-stopHB:
					return
				case <-t.C:
					mu.Lock()
					ids := append([]uint64(nil), outst...)
					mu.Unlock()
					if len(ids) == 0 {
						return
					}
					alive, err := w.Client.Heartbeat(lb.Epoch, ids)
					if err != nil {
						continue // transient; the next tick retries
					}
					live := make(map[uint64]bool, len(alive))
					for _, id := range alive {
						live[id] = true
					}
					mu.Lock()
					if dropped == nil {
						dropped = make(map[uint64]bool)
					}
					for _, id := range ids {
						if !live[id] {
							dropped[id] = true
						}
					}
					mu.Unlock()
				}
			}
		}()
	}

	for _, tr := range lb.Trials {
		if ctx.Err() != nil {
			abandoned = true
			break
		}
		mu.Lock()
		dead := dropped[tr.ID]
		mu.Unlock()
		if dead {
			// The server reclaimed this lease (e.g. a previous trial of
			// the batch overran the TTL without heartbeats extending this
			// one in time); measuring it would be wasted work.
			continue
		}
		value, fail := w.measureOne(tr)
		mu.Lock()
		for i, id := range outst {
			if id == tr.ID {
				outst = append(outst[:i], outst[i+1:]...)
				break
			}
		}
		mu.Unlock()
		if fail != nil {
			fails = append(fails, core.TrialFailure{ID: tr.ID, Failure: *fail})
		} else {
			results = append(results, core.TrialResult{ID: tr.ID, Value: value})
		}
	}
	if stopHB != nil {
		close(stopHB)
		hbWG.Wait()
	}
	return results, fails, abandoned
}

// refOne runs one reference-probe measurement with the same panic and
// non-finite containment as measureOne.
func (w *Worker) refOne() (value float64, fail *guard.Failure) {
	defer func() {
		if r := recover(); r != nil {
			fail = &guard.Failure{Kind: guard.Panic, Err: fmt.Errorf("tuned: reference probe panic: %v", r)}
		}
	}()
	v := w.RefMeasure()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, &guard.Failure{Kind: guard.Invalid, Err: fmt.Errorf("tuned: non-finite reference %v", v)}
	}
	return v, nil
}

// measureOne runs one measurement with panic and non-finite-sample
// containment.
func (w *Worker) measureOne(tr core.Trial) (value float64, fail *guard.Failure) {
	defer func() {
		if r := recover(); r != nil {
			fail = &guard.Failure{Kind: guard.Panic, Algo: tr.Algo, Err: fmt.Errorf("tuned: measurement panic: %v", r)}
		}
	}()
	v := w.Measure(tr.Algo, tr.Config)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, &guard.Failure{Kind: guard.Invalid, Algo: tr.Algo, Err: fmt.Errorf("tuned: non-finite measurement %v", v)}
	}
	return v, nil
}
