package wire

import (
	"bytes"
	"hash/crc32"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the frame decoder. The
// contract under fuzzing: never panic, never allocate beyond the
// validated length prefix, and accept a frame only when every header
// field is valid and the payload matches its checksum. Accepted frames
// must re-encode to an equivalent frame (the payload is returned
// byte-exact).
func FuzzWireDecode(f *testing.F) {
	// Seeds: valid frames of several shapes plus classic corruptions.
	for _, m := range []struct {
		typ Type
		v   any
	}{
		{THello, Hello{Proto: Version, Hash: 0xdeadbeef, Name: "seed"}},
		{TTrials, LeaseNResp{Epoch: 42, Trials: []Trial{{ID: 7, Algo: 2, Config: []float64{1, 2.5}, DeadlineMS: 1700000000000}}}},
		{TCompleteN, CompleteNReq{Epoch: 42, Results: []Result{{ID: 7, Value: 3.25}}}},
		{TFailN, FailNReq{Fails: []Fail{{ID: 9, Kind: "timeout", Penalty: 100}}}},
		{TBest, nil},
		{TError, ErrorResp{Code: CodeConfigMismatch, Msg: "hash mismatch"}},
	} {
		frame, err := Encode(m.typ, m.v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1]) // truncated payload
		f.Add(frame[:HeaderSize-3]) // truncated header
		mut := bytes.Clone(frame)
		mut[5] = 0xee // unknown type
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize+8))

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: the frame must have been internally consistent.
		if typ <= TInvalid || typ >= numTypes {
			t.Fatalf("decoder accepted invalid type %d", typ)
		}
		if len(payload) > MaxPayload {
			t.Fatalf("decoder returned %d-byte payload beyond MaxPayload", len(payload))
		}
		if len(data) < HeaderSize+len(payload) {
			t.Fatalf("decoder fabricated %d payload bytes from a %d-byte input", len(payload), len(data))
		}
		if got, want := crc32.ChecksumIEEE(payload), bytesToU32(data[12:16]); got != want {
			t.Fatalf("decoder accepted checksum mismatch: payload %08x, header %08x", got, want)
		}
	})
}

func bytesToU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
