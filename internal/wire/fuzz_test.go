package wire

import (
	"bytes"
	"hash/crc32"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the frame decoder and, for
// every accepted frame, at the payload decoder of the frame's type. The
// contract under fuzzing: never panic, never allocate beyond the
// validated length prefix, and accept a frame only when every header
// field is valid and the payload matches its checksum. Accepted frames
// must re-encode to an equivalent frame (the payload is returned
// byte-exact), and DecodeFrom must either decode or error — a payload
// that passed the CRC is still untrusted bytes, JSON or packed alike.
func FuzzWireDecode(f *testing.F) {
	// Seeds: valid frames of several shapes plus classic corruptions.
	for _, m := range []struct {
		typ Type
		v   Payload
	}{
		{THello, &Hello{Proto: Version, Hash: 0xdeadbeef, Name: "seed"}},
		{THello, &Hello{Proto: Version, Hash: 0xdeadbeef, Name: "seed", Tenant: "team-a"}},
		{THelloAck, &HelloAck{Proto: Version, Hash: 1, Epoch: 99, Algos: []string{"a", "b"}, LeaseTTLMS: 500}},
		{THelloAck, &HelloAck{Proto: Version, Hash: 1, Epoch: 99, Algos: []string{"a"}, Tenant: "team-a"}},
		{TTenants, nil},
		{TTenantsAck, &TenantsResp{Resident: 1, Iterations: 12, InFlight: 3, Tenants: []TenantStat{
			{Name: "default", Resident: true, Epoch: 7, Iterations: 12, InFlight: 3, BestAlgo: 1, BestName: "b", BestValue: 0.5},
			{Name: "team-a", Resident: false, Iterations: 40, BestAlgo: -1, Spills: 2, Restarts: 1},
		}}},
		{TLeaseN, &LeaseNReq{N: 8}},
		{TLeaseN, &LeaseNReq{N: 8, Features: []float64{1, 100.5, -3}}},
		{TTrials, &LeaseNResp{Epoch: 42, Trials: []Trial{{ID: 7, Algo: 2, Config: []float64{1, 2.5}, DeadlineMS: 1700000000000}}}},
		{TTrials, &LeaseNResp{Epoch: 42, RetryMS: 25, Draining: true}},
		{TTrials, &LeaseNResp{Epoch: 42, SuggestMax: 4, Trials: []Trial{{ID: 7, Algo: 2}}}},
		{TCompleteN, &CompleteNReq{Epoch: 42, Results: []Result{{ID: 7, Value: 3.25}}}},
		{TCompleteN, &CompleteNReq{Epoch: 42, Results: []Result{{ID: 1 << 48, Value: 3.25, Features: []float64{100}}}}},
		{TFailN, &FailNReq{Fails: []Fail{{ID: 9, Kind: "timeout", Penalty: 100}}}},
		{TAck, &AckResp{Applied: []uint64{1}, Dropped: []uint64{2}}},
		{THeartbeat, &HeartbeatReq{Epoch: 42, IDs: []uint64{1, 2, 3}}},
		{THeartbeatAck, &HeartbeatResp{Alive: []uint64{1, 3}}},
		{TBest, nil},
		{TBestAck, &BestResp{Algo: 1, Name: "b", Value: 0.5, Iterations: 10}},
		{TStats, nil},
		{TStatsAck, &StatsResp{Leased: 10, Completed: 8, Absorbed: 3, Counts: []int{4, 4}}},
		{TError, &ErrorResp{Code: CodeConfigMismatch, Msg: "hash mismatch"}},
		{TAbsorb, &AbsorbReq{Worker: 0xfeed, Seq: 3, Obs: []Obs{{Arm: 1, Value: 2.5}, {Arm: 0, Value: 9, Failed: true}}}},
		{TAbsorbAck, &AbsorbAck{Applied: 2}},
		{TCalibrate, &CalibrateReq{Worker: 0xfeed, Ref: 4.5}},
		{TCalibrateAck, &CalibrateAck{Factor: 4.0, Baseline: 1.125}},
		{TStatsAck, &StatsResp{DriftEvents: 2, DriftDecays: 1, DriftReforks: 1, DriftStale: 3, PendingProbes: 4, Calibrated: 2}},
		{TStatsAck, &StatsResp{Leased: 10, Completed: 8, Contexts: 3, Rebalanced: 2}},

		// Packed hot-path frames (v3): the binary DecodeFrom paths must
		// survive the same corruption battery as the JSON family.
		{TLeaseP, &PackedLeaseReq{N: 16}},
		{TLeaseP, &PackedLeaseReq{N: 16, Features: []float64{27, 0.5, -1}}},
		{TTrialsP, &PackedTrials{Epoch: 42, Trials: []PackedTrial{
			{ID: 7, Algo: 2, Config: []float64{1, 2.5}, DeadlineMS: 1700000000000},
			{ID: 8, Algo: 0, Speculative: true, Pinned: true},
		}}},
		{TTrialsP, &PackedTrials{Epoch: 42, RetryMS: 25, Draining: true, SuggestMax: 4}},
		{TCompleteP, &PackedCompleteReq{Epoch: 42, Worker: 0xfeed, Results: []PackedResult{{ID: 7, Value: 3.25}, {ID: 1 << 48, Value: -9}}}},
		{TFailP, &PackedFailReq{Epoch: 42, Fails: []PackedFail{{ID: 9, Kind: FailTimeout, Penalty: 100, Msg: "deadline"}}}},
		{TAckP, &PackedAck{Applied: []uint64{1, 2}, Dropped: []uint64{3}}},
	} {
		frame, err := Encode(m.typ, m.v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1]) // truncated payload
		f.Add(frame[:HeaderSize-3]) // truncated header
		mut := bytes.Clone(frame)
		mut[5] = 0xee // unknown type
		f.Add(mut)
		// The chaos layer's corruption model: one payload byte flipped
		// after framing, which the CRC must catch (regression corpus for
		// internal/chaos soaks — the same fault its Write injects).
		if len(frame) > HeaderSize {
			flipped := bytes.Clone(frame)
			flipped[HeaderSize+(len(frame)-HeaderSize)/2] ^= 0xff
			f.Add(flipped)
		}
		// A chaos reset truncates mid-frame at an arbitrary byte.
		f.Add(frame[:HeaderSize+(len(frame)-HeaderSize)/3])
		// Payloads that pass the CRC but are not the type's payload shape
		// — JSON handed to packed decoders and vice versa included.
		wrongType := bytes.Clone(frame)
		for t := THello; t < numTypes; t++ {
			wrongType[5] = byte(t)
			f.Add(bytes.Clone(wrongType))
		}
	}
	// Backward decode: a v-prev (version 1) client's frames — a Hello
	// with no tenant field among them — must stay accepted by the
	// current decoder, since v1 workers keep connecting to v2 servers.
	for _, m := range []struct {
		typ Type
		v   Payload
	}{
		{THello, &Hello{Proto: 1, Hash: 0xdeadbeef, Name: "v1-worker"}},
		{TLeaseN, &LeaseNReq{N: 4}},
		{TStats, nil},
	} {
		frame, err := EncodeV(1, m.typ, m.v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	// Version-gate seeds: a future version must be refused, not misread;
	// a correlation ID on a pre-v3 frame is corrupt; a packed type
	// stamped pre-v3 is corrupt; a corr ID on a valid v3 frame is fine.
	{
		frame, err := Encode(THello, &Hello{Proto: Version})
		if err != nil {
			f.Fatal(err)
		}
		next := bytes.Clone(frame)
		next[4] = Version + 1
		f.Add(next)

		badCorr := bytes.Clone(frame)
		badCorr[4] = 2
		badCorr[6], badCorr[7] = 0xBE, 0xEF
		f.Add(badCorr)

		corr := bytes.Clone(frame)
		corr[6], corr[7] = 0xBE, 0xEF
		f.Add(corr)
	}
	{
		frame, err := Encode(TCompleteP, &PackedCompleteReq{Epoch: 1, Results: []PackedResult{{ID: 1, Value: 2}}})
		if err != nil {
			f.Fatal(err)
		}
		old := bytes.Clone(frame)
		old[4] = 2
		f.Add(old)
		// Truncated-window shapes: headers promising more packed elements
		// than the payload holds (hostile-count defense).
		f.Add(frame[:HeaderSize+9]) // epoch + worker, count cut off
	}
	{
		// A packed trials frame whose trial count survives but whose
		// config floats are cut mid-window.
		frame, err := Encode(TTrialsP, &PackedTrials{Epoch: 9, Trials: []PackedTrial{{ID: 1, Algo: 1, Config: []float64{1, 2, 3, 4}}}})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[:len(frame)-13])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize+8))

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, corr, payload, _, err := ReadFrameBuf(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		// Accepted: the frame must have been internally consistent.
		if typ <= TInvalid || typ >= numTypes {
			t.Fatalf("decoder accepted invalid type %d", typ)
		}
		if corr != 0 && data[4] < 3 {
			t.Fatalf("decoder accepted correlation ID %d on a v%d frame", corr, data[4])
		}
		if typ.Packed() && data[4] < 3 {
			t.Fatalf("decoder accepted packed %v frame stamped v%d", typ, data[4])
		}
		if len(payload) > MaxPayload {
			t.Fatalf("decoder returned %d-byte payload beyond MaxPayload", len(payload))
		}
		if len(data) < HeaderSize+len(payload) {
			t.Fatalf("decoder fabricated %d payload bytes from a %d-byte input", len(payload), len(data))
		}
		if got, want := crc32.ChecksumIEEE(payload), bytesToU32(data[12:16]); got != want {
			t.Fatalf("decoder accepted checksum mismatch: payload %08x, header %08x", got, want)
		}
		// The payload decoder for the frame's declared type must decode
		// or error, never panic; TBest, TStats and TTenants carry no
		// body. Decode twice into the same receiver: packed DecodeFrom
		// reuses internal slices, and the second pass must agree with the
		// first regardless of leftover state.
		if msg := payloadFor(typ); msg != nil {
			if err := msg.DecodeFrom(payload); err == nil {
				if err2 := msg.DecodeFrom(payload); err2 != nil {
					t.Fatalf("decode clean, re-decode into reused receiver failed: %v", err2)
				}
			}
		}
	})
}

// payloadFor returns a fresh payload struct for each bodied type.
func payloadFor(typ Type) Payload {
	switch typ {
	case THello:
		return &Hello{}
	case THelloAck:
		return &HelloAck{}
	case TLeaseN:
		return &LeaseNReq{}
	case TTrials:
		return &LeaseNResp{}
	case TCompleteN:
		return &CompleteNReq{}
	case TFailN:
		return &FailNReq{}
	case TAck:
		return &AckResp{}
	case THeartbeat:
		return &HeartbeatReq{}
	case THeartbeatAck:
		return &HeartbeatResp{}
	case TBestAck:
		return &BestResp{}
	case TStatsAck:
		return &StatsResp{}
	case TError:
		return &ErrorResp{}
	case TAbsorb:
		return &AbsorbReq{}
	case TAbsorbAck:
		return &AbsorbAck{}
	case TCalibrate:
		return &CalibrateReq{}
	case TCalibrateAck:
		return &CalibrateAck{}
	case TTenantsAck:
		return &TenantsResp{}
	case TLeaseP:
		return &PackedLeaseReq{}
	case TTrialsP:
		return &PackedTrials{}
	case TCompleteP:
		return &PackedCompleteReq{}
	case TFailP:
		return &PackedFailReq{}
	case TAckP:
		return &PackedAck{}
	default:
		return nil
	}
}

func bytesToU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
