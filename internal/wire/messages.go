package wire

import "hash/crc32"

// Message payloads. Each struct here is the JSON body of exactly one
// frame Type (the packed binary bodies live in packed.go). Fields are
// additive-only within a protocol version: decoders ignore unknown
// fields, so new optional fields need no version bump. Every payload
// implements the Payload codec interface; for this family the two
// methods are the shared JSON helpers.

// ConfigHash summarizes an algorithm roster for the handshake: workers
// refuse to feed measurements into a run whose algorithm indices mean
// something else. It lives with the protocol because both sides of the
// wire — and the tenant registry keying handshakes — must compute it
// identically.
func ConfigHash(algos []string) uint32 {
	h := crc32.NewIEEE()
	for _, a := range algos {
		h.Write([]byte(a))
		h.Write([]byte{0})
	}
	return h.Sum32()
}

// Hello opens every connection (frame THello). The client states its
// protocol version and, when it already knows it, the config hash of
// the tuning run it expects to join; a zero hash accepts whatever the
// server runs (the hash is then learned from the ack and pinned for
// subsequent reconnects).
type Hello struct {
	Proto int    `json:"proto"`
	Hash  uint32 `json:"hash,omitempty"`
	Name  string `json:"name,omitempty"`
	// Tenant names the tuning problem this session joins on a
	// multi-tenant server (proto ≥ 2). Empty — including every proto-1
	// client, which predates the field — means the "default" tenant, so
	// old workers keep tuning against a multi-tenant server unchanged.
	Tenant string `json:"tenant,omitempty"`
}

// HelloAck (frame THelloAck) is the server's capability statement: its
// config hash (over the algorithm roster), the session epoch stamping
// every lease this server process issues, the algorithm names (index =
// wire algorithm index, so a worker can build its measurement table
// without out-of-band configuration), and the lease TTL workers should
// heartbeat well inside of.
type HelloAck struct {
	Proto      int      `json:"proto"`
	Hash       uint32   `json:"hash"`
	Epoch      int64    `json:"epoch"`
	Algos      []string `json:"algos"`
	LeaseTTLMS int64    `json:"lease_ttl_ms"`
	// RefAlgo is the algorithm index workers should use as the speed
	// reference when calibrating (see CalibrateReq). Optional — servers
	// that do not calibrate omit it, and 0 (the first algorithm) is a
	// valid reference, so workers gate calibration on their own flag, not
	// on this field.
	RefAlgo int `json:"ref_algo,omitempty"`
	// Tenant echoes the tenant this session was routed to, which for an
	// empty Hello.Tenant is "default" — the one field a client needs to
	// learn where it actually landed.
	Tenant string `json:"tenant,omitempty"`
}

// LeaseNReq (frame TLeaseN) asks for up to N trials in one round trip.
type LeaseNReq struct {
	N int `json:"n"`
	// Features, when present, describes the input the worker is about
	// to measure (input size, corpus class, ...). A contextual server
	// routes the lease to the matching per-context engine; servers
	// without contextual routing — and all v1 servers — ignore the
	// field (additive, no version bump). Absent features mean the
	// global context.
	Features []float64 `json:"features,omitempty"`
}

// Trial is one leased trial on the wire.
type Trial struct {
	ID     uint64    `json:"id"`
	Algo   int       `json:"algo"`
	Config []float64 `json:"config,omitempty"`
	// DeadlineMS is the lease deadline as Unix milliseconds (0 = no
	// expiry). It is advisory for pacing heartbeats; the server's clock
	// is authoritative.
	DeadlineMS  int64 `json:"deadline_ms,omitempty"`
	Speculative bool  `json:"spec,omitempty"`
	Pinned      bool  `json:"pinned,omitempty"`
}

// LeaseNResp (frame TTrials) carries the leased batch. Epoch stamps the
// server process that issued these leases: completions must echo it, so
// a lease that survived a server restart can never complete a
// same-numbered trial of the resumed process. Done tells workers the
// server's trial target is reached and they should exit; RetryMS is a
// backoff hint when the batch is empty because the engine's in-flight
// cap is reached.
type LeaseNResp struct {
	Epoch   int64   `json:"epoch"`
	Trials  []Trial `json:"trials,omitempty"`
	Done    bool    `json:"done,omitempty"`
	RetryMS int64   `json:"retry_ms,omitempty"`
	// Draining marks an empty batch sent because the server is shutting
	// down gracefully: no new leases, but reports are still accepted.
	Draining bool `json:"draining,omitempty"`
	// SuggestMax is the server's rebalancing push: when nonzero, this
	// session is at or above its fair share of the engine's in-flight
	// capacity while other sessions starve, and the client should cap
	// its next lease asks at this size until the hint changes. Purely
	// advisory — the server enforces the shrink on its side regardless.
	SuggestMax int `json:"suggest_max,omitempty"`
}

// Result is one measured trial in a CompleteN batch.
type Result struct {
	ID    uint64  `json:"id"`
	Value float64 `json:"value"`
	// Features optionally names the feature vector the trial was
	// measured under. A contextual server does not need it — it routes
	// completions by trial ID through its route table, which remembers
	// the lease's vector — so the reference client leaves it empty to
	// keep the hottest message lean; the field exists for third-party
	// clients that want the report to be self-describing. Additive:
	// plain servers ignore it.
	Features []float64 `json:"features,omitempty"`
}

// CompleteNReq (frame TCompleteN) reports a batch of measured values.
// Worker, when nonzero, identifies the reporting worker so the server
// can divide the values by that worker's calibrated speed factor (see
// CalibrateReq); zero reports raw costs.
type CompleteNReq struct {
	Epoch   int64    `json:"epoch"`
	Worker  uint64   `json:"worker,omitempty"`
	Results []Result `json:"results"`
}

// Fail is one failed trial in a FailN batch.
type Fail struct {
	ID      uint64  `json:"id"`
	Kind    string  `json:"kind"` // guard.Kind string: "panic", "timeout", "invalid"
	Penalty float64 `json:"penalty,omitempty"`
	Msg     string  `json:"msg,omitempty"`
}

// FailNReq (frame TFailN) reports a batch of measurement failures.
type FailNReq struct {
	Epoch int64  `json:"epoch"`
	Fails []Fail `json:"fails"`
}

// AckResp (frame TAck) answers CompleteN and FailN: Applied lists trial
// IDs whose report reached the tuner, Dropped lists IDs acknowledged
// but discarded — already completed, reclaimed after lease expiry, or
// from a different epoch. Both outcomes are success for the worker;
// Dropped only means the engine had already charged the trial.
type AckResp struct {
	Applied []uint64 `json:"applied,omitempty"`
	Dropped []uint64 `json:"dropped,omitempty"`
}

// HeartbeatReq (frame THeartbeat) extends the leases of the listed
// trials.
type HeartbeatReq struct {
	Epoch int64    `json:"epoch"`
	IDs   []uint64 `json:"ids"`
}

// HeartbeatResp (frame THeartbeatAck) lists which of the requested
// trials are still leased (deadlines now extended). A worker should
// abandon any trial missing from Alive.
type HeartbeatResp struct {
	Alive []uint64 `json:"alive,omitempty"`
}

// Obs is one degraded-mode observation: an (arm, value) pair measured
// by a worker's local fallback tuner while it was partitioned from the
// server. Failed observations carry the local tuner's penalty as Value,
// matching nominal.Observation.
type Obs struct {
	Arm    int     `json:"arm"`
	Value  float64 `json:"value"`
	Failed bool    `json:"failed,omitempty"`
}

// AbsorbReq (frame TAbsorb) folds a worker's locally-accumulated
// observations into the server's selector after a partition heals.
// (Worker, Seq) deduplicate retries: the worker picks a random nonzero
// Worker ID at startup and numbers its flushes, so a flush whose ack
// was lost can be resent without the observations being applied twice.
type AbsorbReq struct {
	Worker uint64 `json:"worker"`
	Seq    uint64 `json:"seq"`
	Obs    []Obs  `json:"obs"`
}

// AbsorbAck (frame TAbsorbAck) answers AbsorbReq. Duplicate means the
// sequence number was already applied and the batch was dropped — a
// success for the worker, exactly like AckResp.Dropped.
type AbsorbAck struct {
	Applied   int  `json:"applied"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// CalibrateReq (frame TCalibrate) reports a worker's reference-probe
// time: the worker measured HelloAck.RefAlgo at its initial
// configuration and sends the (median-filtered) wall time. The server
// keeps the latest reference per worker and derives a speed factor
// relative to the fastest fleet member, which then normalizes every
// cost that worker reports — so a 4×-slower machine's measurements
// compare against the fleet on equal footing instead of biasing the
// selector toward whatever the fast machines happened to run.
type CalibrateReq struct {
	Worker uint64  `json:"worker"`
	Ref    float64 `json:"ref"`
}

// CalibrateAck (frame TCalibrateAck) answers CalibrateReq with the
// factor now applied to this worker's reports (1 = fleet-fastest) and
// the fleet baseline reference the factor is relative to.
type CalibrateAck struct {
	Factor   float64 `json:"factor"`
	Baseline float64 `json:"baseline"`
}

// TBest, TStats and TTenants requests have no body.

// TenantStat is one tenant's line in a TenantsResp: identity, residency
// (a spilled tenant is checkpointed to disk, not live in memory), and
// the read-side summary of its engine. For a spilled tenant the summary
// is the state captured at spill time — listing tenants never forces a
// warm restart.
type TenantStat struct {
	Name       string  `json:"name"`
	Resident   bool    `json:"resident"`
	Epoch      int64   `json:"epoch,omitempty"`
	Iterations int     `json:"iterations"`
	InFlight   int     `json:"in_flight,omitempty"`
	Completed  uint64  `json:"completed,omitempty"`
	BestAlgo   int     `json:"best_algo"` // -1 before any completion
	BestName   string  `json:"best_name,omitempty"`
	BestValue  float64 `json:"best_value,omitempty"`
	Spills     uint64  `json:"spills,omitempty"`
	Restarts   uint64  `json:"restarts,omitempty"`
}

// TenantsResp (frame TTenantsAck) is the aggregate view over every
// registered tenant, resident or spilled, plus fleet totals. Per-tenant
// Best/Stats stay on the session's own tenant; this is the operator's
// one-call overview.
type TenantsResp struct {
	Tenants    []TenantStat `json:"tenants"`
	Resident   int          `json:"resident"`
	Iterations int          `json:"iterations"` // summed across tenants
	InFlight   int          `json:"in_flight"`  // summed across resident tenants
}

// BestResp (frame TBestAck) is the globally best observation so far.
type BestResp struct {
	Algo       int       `json:"algo"` // -1 before any completion
	Name       string    `json:"name,omitempty"`
	Config     []float64 `json:"config,omitempty"`
	Value      float64   `json:"value"`
	Iterations int       `json:"iterations"`
}

// StatsResp (frame TStatsAck) mirrors core.EngineStats plus the
// selection counts, the drift watchdog's counters (core.DriftStats)
// and the calibration state — one stats read covers the engine, the
// change-point machinery and the fleet normalization.
type StatsResp struct {
	Leased     uint64 `json:"leased"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Expired    uint64 `json:"expired"`
	InFlight   int    `json:"in_flight"`
	Iterations int    `json:"iterations"`
	Counts     []int  `json:"counts,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	Absorbed   uint64 `json:"absorbed,omitempty"`

	// Drift watchdog counters (zero when no watchdog is configured).
	DriftEvents        uint64 `json:"drift_events,omitempty"`
	DriftDecays        uint64 `json:"drift_decays,omitempty"`
	DriftReforks       uint64 `json:"drift_reforks,omitempty"`
	DriftStale         uint64 `json:"drift_stale,omitempty"`
	DriftOutliers      uint64 `json:"drift_outliers,omitempty"`
	PendingProbes      int    `json:"pending_probes,omitempty"`
	ProbesScheduled    uint64 `json:"probes_scheduled,omitempty"`
	QuarantineReprobes int    `json:"quarantine_reprobes,omitempty"`

	// Calibrated counts workers with a registered reference probe.
	Calibrated int `json:"calibrated,omitempty"`

	// Rebalanced counts lease grants the server shrank because the
	// session sat at its fair share of in-flight capacity while peer
	// sessions starved (see LeaseNResp.SuggestMax).
	Rebalanced uint64 `json:"rebalanced,omitempty"`

	// Contexts counts live per-context engines on a contextual server
	// (0 on a non-contextual one).
	Contexts int `json:"contexts,omitempty"`
}

// Error codes carried by ErrorResp.
const (
	CodeBadRequest     = 400 // malformed payload or wrong first frame
	CodeUnknownTenant  = 404 // Hello names a tenant the server doesn't run
	CodeConfigMismatch = 409 // Hello hash does not match the server's run
	CodeInternal       = 500
)

// ErrorResp (frame TError) reports a request-level failure. After a
// handshake failure the server closes the connection; after a
// bad request on an established connection it does too — a peer that
// cannot frame requests correctly cannot be trusted to stay in sync.
type ErrorResp struct {
	Code int    `json:"code"`
	Msg  string `json:"msg"`
}

// Payload implementations for the JSON family. Each is the shared
// helper pair; the concrete receiver only picks the struct shape.

func (m *Hello) AppendEncode(buf []byte) []byte    { return appendJSON(buf, m) }
func (m *Hello) DecodeFrom(buf []byte) error       { return decodeJSON(buf, m) }
func (m *HelloAck) AppendEncode(buf []byte) []byte { return appendJSON(buf, m) }
func (m *HelloAck) DecodeFrom(buf []byte) error    { return decodeJSON(buf, m) }

func (m *LeaseNReq) AppendEncode(buf []byte) []byte    { return appendJSON(buf, m) }
func (m *LeaseNReq) DecodeFrom(buf []byte) error       { return decodeJSON(buf, m) }
func (m *LeaseNResp) AppendEncode(buf []byte) []byte   { return appendJSON(buf, m) }
func (m *LeaseNResp) DecodeFrom(buf []byte) error      { return decodeJSON(buf, m) }
func (m *CompleteNReq) AppendEncode(buf []byte) []byte { return appendJSON(buf, m) }
func (m *CompleteNReq) DecodeFrom(buf []byte) error    { return decodeJSON(buf, m) }
func (m *FailNReq) AppendEncode(buf []byte) []byte     { return appendJSON(buf, m) }
func (m *FailNReq) DecodeFrom(buf []byte) error        { return decodeJSON(buf, m) }
func (m *AckResp) AppendEncode(buf []byte) []byte      { return appendJSON(buf, m) }
func (m *AckResp) DecodeFrom(buf []byte) error         { return decodeJSON(buf, m) }

func (m *HeartbeatReq) AppendEncode(buf []byte) []byte  { return appendJSON(buf, m) }
func (m *HeartbeatReq) DecodeFrom(buf []byte) error     { return decodeJSON(buf, m) }
func (m *HeartbeatResp) AppendEncode(buf []byte) []byte { return appendJSON(buf, m) }
func (m *HeartbeatResp) DecodeFrom(buf []byte) error    { return decodeJSON(buf, m) }

func (m *AbsorbReq) AppendEncode(buf []byte) []byte    { return appendJSON(buf, m) }
func (m *AbsorbReq) DecodeFrom(buf []byte) error       { return decodeJSON(buf, m) }
func (m *AbsorbAck) AppendEncode(buf []byte) []byte    { return appendJSON(buf, m) }
func (m *AbsorbAck) DecodeFrom(buf []byte) error       { return decodeJSON(buf, m) }
func (m *CalibrateReq) AppendEncode(buf []byte) []byte { return appendJSON(buf, m) }
func (m *CalibrateReq) DecodeFrom(buf []byte) error    { return decodeJSON(buf, m) }
func (m *CalibrateAck) AppendEncode(buf []byte) []byte { return appendJSON(buf, m) }
func (m *CalibrateAck) DecodeFrom(buf []byte) error    { return decodeJSON(buf, m) }

func (m *TenantsResp) AppendEncode(buf []byte) []byte { return appendJSON(buf, m) }
func (m *TenantsResp) DecodeFrom(buf []byte) error    { return decodeJSON(buf, m) }
func (m *BestResp) AppendEncode(buf []byte) []byte    { return appendJSON(buf, m) }
func (m *BestResp) DecodeFrom(buf []byte) error       { return decodeJSON(buf, m) }
func (m *StatsResp) AppendEncode(buf []byte) []byte   { return appendJSON(buf, m) }
func (m *StatsResp) DecodeFrom(buf []byte) error      { return decodeJSON(buf, m) }
func (m *ErrorResp) AppendEncode(buf []byte) []byte   { return appendJSON(buf, m) }
func (m *ErrorResp) DecodeFrom(buf []byte) error      { return decodeJSON(buf, m) }
