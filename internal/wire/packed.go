package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Packed hot-path payloads (protocol v3). The trial lifecycle —
// LeaseN/CompleteN/FailN and their responses — dominates wire traffic
// by orders of magnitude, so it gets a binary encoding instead of JSON:
// fixed-width 8-byte fields for values and epochs, unsigned varints for
// IDs, indices and counts, one flag byte where booleans cluster. The
// decisive property is not compactness but allocation behavior: every
// DecodeFrom below reuses the receiver's slices (including one shared
// float64 arena backing all Config slices of a batch), so a connection
// that recycles its request/response structs decodes frames with zero
// steady-state allocations, and AppendEncode composes into pooled frame
// buffers the same way. The alloc-count tests in packed_test.go pin
// both directions at 0 allocs/op.
//
// Wire grammar (all fixed-width integers big-endian, uvarint = LEB128):
//
//	LeaseP     = uvarint n, uvarint nFeat, nFeat × f64
//	TrialsP    = u64 epoch, byte flags(done|draining), uvarint retryMS,
//	             uvarint suggestMax, uvarint nTrials, nTrials × Trial
//	Trial      = uvarint id, uvarint algo, byte flags(spec|pinned|dl),
//	             [uvarint deadlineMS], uvarint nCfg, nCfg × f64
//	CompleteP  = u64 epoch, uvarint worker, uvarint n, n × (uvarint id, f64)
//	FailP      = u64 epoch, uvarint n, n × (uvarint id, byte kind,
//	             f64 penalty, uvarint msgLen, msg bytes)
//	AckP       = uvarint nApplied, nApplied × uvarint,
//	             uvarint nDropped, nDropped × uvarint
//
// Counts are validated against the remaining payload length before any
// slice grows, so a hostile count cannot balloon memory (every element
// consumes at least one byte).

// Failure kinds on the packed wire, mirroring guard.Kind's string form
// in the JSON encoding.
const (
	FailOther   uint8 = 0
	FailPanic   uint8 = 1
	FailTimeout uint8 = 2
	FailInvalid uint8 = 3
)

// Packed-payload flag bits.
const (
	ptDone     = 1 << 0 // TrialsP: trial target reached, workers exit
	ptDraining = 1 << 1 // TrialsP: graceful shutdown, no new leases

	trSpec     = 1 << 0 // Trial: speculative proposal
	trPinned   = 1 << 1 // Trial: watchdog-pinned incumbent run
	trDeadline = 1 << 2 // Trial: a deadlineMS varint follows
)

func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

func getUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, ErrShort
	}
	return v, b[n:], nil
}

func getU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, b, ErrShort
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

func getF64(b []byte) (float64, []byte, error) {
	v, rest, err := getU64(b)
	return math.Float64frombits(v), rest, err
}

func getByte(b []byte) (byte, []byte, error) {
	if len(b) < 1 {
		return 0, b, ErrShort
	}
	return b[0], b[1:], nil
}

// checkCount validates an element count against the remaining payload:
// every element encodes to at least minBytes bytes, so a count the
// payload cannot possibly hold is rejected before any allocation.
func checkCount(n uint64, rest []byte, minBytes int) error {
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(len(rest)/minBytes) {
		return fmt.Errorf("%w: count %d exceeds payload", ErrShort, n)
	}
	return nil
}

// PackedLeaseReq (frame TLeaseP) is the packed LeaseNReq: batch size
// plus the optional feature vector routing the lease on a contextual
// server.
type PackedLeaseReq struct {
	N        int
	Features []float64
}

func (m *PackedLeaseReq) AppendEncode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(max(m.N, 0)))
	buf = binary.AppendUvarint(buf, uint64(len(m.Features)))
	for _, f := range m.Features {
		buf = appendF64(buf, f)
	}
	return buf
}

func (m *PackedLeaseReq) DecodeFrom(buf []byte) error {
	n, rest, err := getUvarint(buf)
	if err != nil || n > math.MaxInt32 {
		return ErrShort
	}
	m.N = int(n)
	nf, rest, err := getUvarint(rest)
	if err != nil {
		return err
	}
	if err := checkCount(nf, rest, 8); err != nil {
		return err
	}
	m.Features = m.Features[:0]
	for i := uint64(0); i < nf; i++ {
		var f float64
		f, rest, err = getF64(rest)
		if err != nil {
			return err
		}
		m.Features = append(m.Features, f)
	}
	return nil
}

// PackedTrial is one leased trial in a PackedTrials batch. Config
// aliases the batch's shared arena: valid until the PackedTrials is
// decoded into again.
type PackedTrial struct {
	ID          uint64
	Algo        int
	DeadlineMS  int64
	Speculative bool
	Pinned      bool
	Config      []float64
}

// PackedTrials (frame TTrialsP) is the packed LeaseNResp.
type PackedTrials struct {
	Epoch      int64
	Done       bool
	Draining   bool
	RetryMS    int64
	SuggestMax int
	Trials     []PackedTrial

	// arena backs every Trials[i].Config; starts/lens are decode
	// scratch so Config sub-slices are cut only after the arena stops
	// growing.
	arena  []float64
	starts []int
	lens   []int
}

func (m *PackedTrials) AppendEncode(buf []byte) []byte {
	buf = appendU64(buf, uint64(m.Epoch))
	var flags byte
	if m.Done {
		flags |= ptDone
	}
	if m.Draining {
		flags |= ptDraining
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(max(m.RetryMS, 0)))
	buf = binary.AppendUvarint(buf, uint64(max(m.SuggestMax, 0)))
	buf = binary.AppendUvarint(buf, uint64(len(m.Trials)))
	for i := range m.Trials {
		tr := &m.Trials[i]
		buf = binary.AppendUvarint(buf, tr.ID)
		buf = binary.AppendUvarint(buf, uint64(max(tr.Algo, 0)))
		var tf byte
		if tr.Speculative {
			tf |= trSpec
		}
		if tr.Pinned {
			tf |= trPinned
		}
		if tr.DeadlineMS > 0 {
			tf |= trDeadline
		}
		buf = append(buf, tf)
		if tr.DeadlineMS > 0 {
			buf = binary.AppendUvarint(buf, uint64(tr.DeadlineMS))
		}
		buf = binary.AppendUvarint(buf, uint64(len(tr.Config)))
		for _, c := range tr.Config {
			buf = appendF64(buf, c)
		}
	}
	return buf
}

func (m *PackedTrials) DecodeFrom(buf []byte) error {
	epoch, rest, err := getU64(buf)
	if err != nil {
		return err
	}
	m.Epoch = int64(epoch)
	flags, rest, err := getByte(rest)
	if err != nil {
		return err
	}
	m.Done = flags&ptDone != 0
	m.Draining = flags&ptDraining != 0
	retry, rest, err := getUvarint(rest)
	if err != nil || retry > math.MaxInt32 {
		return ErrShort
	}
	m.RetryMS = int64(retry)
	suggest, rest, err := getUvarint(rest)
	if err != nil || suggest > math.MaxInt32 {
		return ErrShort
	}
	m.SuggestMax = int(suggest)
	n, rest, err := getUvarint(rest)
	if err != nil {
		return err
	}
	if err := checkCount(n, rest, 4); err != nil {
		return err
	}
	m.Trials = m.Trials[:0]
	m.arena = m.arena[:0]
	m.starts = m.starts[:0]
	m.lens = m.lens[:0]
	for i := uint64(0); i < n; i++ {
		var tr PackedTrial
		tr.ID, rest, err = getUvarint(rest)
		if err != nil {
			return err
		}
		var algo uint64
		algo, rest, err = getUvarint(rest)
		if err != nil || algo > math.MaxInt32 {
			return ErrShort
		}
		tr.Algo = int(algo)
		var tf byte
		tf, rest, err = getByte(rest)
		if err != nil {
			return err
		}
		tr.Speculative = tf&trSpec != 0
		tr.Pinned = tf&trPinned != 0
		if tf&trDeadline != 0 {
			var dl uint64
			dl, rest, err = getUvarint(rest)
			if err != nil || dl > math.MaxInt64 {
				return ErrShort
			}
			tr.DeadlineMS = int64(dl)
		}
		var nc uint64
		nc, rest, err = getUvarint(rest)
		if err != nil {
			return err
		}
		if err := checkCount(nc, rest, 8); err != nil {
			return err
		}
		m.starts = append(m.starts, len(m.arena))
		m.lens = append(m.lens, int(nc))
		for j := uint64(0); j < nc; j++ {
			var c float64
			c, rest, err = getF64(rest)
			if err != nil {
				return err
			}
			m.arena = append(m.arena, c)
		}
		m.Trials = append(m.Trials, tr)
	}
	// Cut the Config views only now: the arena has stopped growing, so
	// the sub-slices stay valid.
	for i := range m.Trials {
		if m.lens[i] > 0 {
			m.Trials[i].Config = m.arena[m.starts[i] : m.starts[i]+m.lens[i]]
		} else {
			m.Trials[i].Config = nil
		}
	}
	return nil
}

// PackedResult is one measured trial in a PackedCompleteReq.
type PackedResult struct {
	ID    uint64
	Value float64
}

// PackedCompleteReq (frame TCompleteP) is the packed CompleteNReq —
// the single hottest message on the wire.
type PackedCompleteReq struct {
	Epoch   int64
	Worker  uint64
	Results []PackedResult
}

func (m *PackedCompleteReq) AppendEncode(buf []byte) []byte {
	buf = appendU64(buf, uint64(m.Epoch))
	buf = binary.AppendUvarint(buf, m.Worker)
	buf = binary.AppendUvarint(buf, uint64(len(m.Results)))
	for i := range m.Results {
		buf = binary.AppendUvarint(buf, m.Results[i].ID)
		buf = appendF64(buf, m.Results[i].Value)
	}
	return buf
}

func (m *PackedCompleteReq) DecodeFrom(buf []byte) error {
	epoch, rest, err := getU64(buf)
	if err != nil {
		return err
	}
	m.Epoch = int64(epoch)
	m.Worker, rest, err = getUvarint(rest)
	if err != nil {
		return err
	}
	n, rest, err := getUvarint(rest)
	if err != nil {
		return err
	}
	if err := checkCount(n, rest, 9); err != nil {
		return err
	}
	m.Results = m.Results[:0]
	for i := uint64(0); i < n; i++ {
		var r PackedResult
		r.ID, rest, err = getUvarint(rest)
		if err != nil {
			return err
		}
		r.Value, rest, err = getF64(rest)
		if err != nil {
			return err
		}
		m.Results = append(m.Results, r)
	}
	return nil
}

// PackedFail is one failed trial in a PackedFailReq. Msg allocates on
// decode when present; failures are off the steady-state hot path.
type PackedFail struct {
	ID      uint64
	Kind    uint8
	Penalty float64
	Msg     string
}

// PackedFailReq (frame TFailP) is the packed FailNReq.
type PackedFailReq struct {
	Epoch int64
	Fails []PackedFail
}

func (m *PackedFailReq) AppendEncode(buf []byte) []byte {
	buf = appendU64(buf, uint64(m.Epoch))
	buf = binary.AppendUvarint(buf, uint64(len(m.Fails)))
	for i := range m.Fails {
		f := &m.Fails[i]
		buf = binary.AppendUvarint(buf, f.ID)
		buf = append(buf, f.Kind)
		buf = appendF64(buf, f.Penalty)
		buf = binary.AppendUvarint(buf, uint64(len(f.Msg)))
		buf = append(buf, f.Msg...)
	}
	return buf
}

func (m *PackedFailReq) DecodeFrom(buf []byte) error {
	epoch, rest, err := getU64(buf)
	if err != nil {
		return err
	}
	m.Epoch = int64(epoch)
	n, rest, err := getUvarint(rest)
	if err != nil {
		return err
	}
	if err := checkCount(n, rest, 11); err != nil {
		return err
	}
	m.Fails = m.Fails[:0]
	for i := uint64(0); i < n; i++ {
		var f PackedFail
		f.ID, rest, err = getUvarint(rest)
		if err != nil {
			return err
		}
		f.Kind, rest, err = getByte(rest)
		if err != nil {
			return err
		}
		f.Penalty, rest, err = getF64(rest)
		if err != nil {
			return err
		}
		var ml uint64
		ml, rest, err = getUvarint(rest)
		if err != nil {
			return err
		}
		if ml > uint64(len(rest)) {
			return fmt.Errorf("%w: message length %d exceeds payload", ErrShort, ml)
		}
		f.Msg = string(rest[:ml])
		rest = rest[ml:]
		m.Fails = append(m.Fails, f)
	}
	return nil
}

// PackedAck (frame TAckP) is the packed AckResp.
type PackedAck struct {
	Applied []uint64
	Dropped []uint64
}

func appendIDList(buf []byte, ids []uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, id)
	}
	return buf
}

func decodeIDList(dst []uint64, buf []byte) ([]uint64, []byte, error) {
	n, rest, err := getUvarint(buf)
	if err != nil {
		return dst, buf, err
	}
	if err := checkCount(n, rest, 1); err != nil {
		return dst, buf, err
	}
	dst = dst[:0]
	for i := uint64(0); i < n; i++ {
		var id uint64
		id, rest, err = getUvarint(rest)
		if err != nil {
			return dst, buf, err
		}
		dst = append(dst, id)
	}
	return dst, rest, nil
}

func (m *PackedAck) AppendEncode(buf []byte) []byte {
	buf = appendIDList(buf, m.Applied)
	return appendIDList(buf, m.Dropped)
}

func (m *PackedAck) DecodeFrom(buf []byte) error {
	var err error
	m.Applied, buf, err = decodeIDList(m.Applied, buf)
	if err != nil {
		return err
	}
	m.Dropped, _, err = decodeIDList(m.Dropped, buf)
	return err
}
