package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func packedRoundTrip(t *testing.T, typ Type, in, out Payload) {
	t.Helper()
	frame, err := Encode(typ, in)
	if err != nil {
		t.Fatal(err)
	}
	gotTyp, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil || gotTyp != typ {
		t.Fatalf("ReadFrame = (%v, %v), want %v", gotTyp, err, typ)
	}
	if err := out.DecodeFrom(payload); err != nil {
		t.Fatal(err)
	}
}

func TestPackedLeaseRoundTrip(t *testing.T) {
	for _, in := range []*PackedLeaseReq{
		{N: 16},
		{N: 8, Features: []float64{27, 0.5, -3.25}},
		{N: 0, Features: []float64{}},
	} {
		var got PackedLeaseReq
		packedRoundTrip(t, TLeaseP, in, &got)
		if got.N != in.N || len(got.Features) != len(in.Features) {
			t.Fatalf("roundtrip = %+v, want %+v", got, *in)
		}
		for i := range in.Features {
			if got.Features[i] != in.Features[i] {
				t.Fatalf("feature %d = %v, want %v", i, got.Features[i], in.Features[i])
			}
		}
	}
}

func TestPackedTrialsRoundTrip(t *testing.T) {
	in := &PackedTrials{
		Epoch:      42,
		Done:       true,
		Draining:   true,
		RetryMS:    25,
		SuggestMax: 4,
		Trials: []PackedTrial{
			{ID: 7, Algo: 2, Config: []float64{1, 2.5, -9}, DeadlineMS: 1700000000000},
			{ID: 8, Algo: 0, Speculative: true, Pinned: true},
			{ID: 1 << 50, Algo: 1, Config: []float64{0.125}},
		},
	}
	var got PackedTrials
	packedRoundTrip(t, TTrialsP, in, &got)
	if got.Epoch != in.Epoch || got.Done != in.Done || got.Draining != in.Draining ||
		got.RetryMS != in.RetryMS || got.SuggestMax != in.SuggestMax {
		t.Fatalf("header roundtrip = %+v", got)
	}
	if len(got.Trials) != len(in.Trials) {
		t.Fatalf("got %d trials, want %d", len(got.Trials), len(in.Trials))
	}
	for i := range in.Trials {
		w, g := in.Trials[i], got.Trials[i]
		if g.ID != w.ID || g.Algo != w.Algo || g.DeadlineMS != w.DeadlineMS ||
			g.Speculative != w.Speculative || g.Pinned != w.Pinned ||
			!reflect.DeepEqual(g.Config, w.Config) {
			t.Fatalf("trial %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestPackedCompleteRoundTrip(t *testing.T) {
	in := &PackedCompleteReq{Epoch: 42, Worker: 0xfeed, Results: []PackedResult{
		{ID: 7, Value: 3.25}, {ID: 1 << 48, Value: -1e300},
	}}
	var got PackedCompleteReq
	packedRoundTrip(t, TCompleteP, in, &got)
	if !reflect.DeepEqual(&got, in) {
		t.Fatalf("roundtrip = %+v, want %+v", got, *in)
	}
}

func TestPackedFailRoundTrip(t *testing.T) {
	in := &PackedFailReq{Epoch: 9, Fails: []PackedFail{
		{ID: 9, Kind: FailTimeout, Penalty: 100, Msg: "deadline exceeded"},
		{ID: 10, Kind: FailPanic},
	}}
	var got PackedFailReq
	packedRoundTrip(t, TFailP, in, &got)
	if !reflect.DeepEqual(&got, in) {
		t.Fatalf("roundtrip = %+v, want %+v", got, *in)
	}
}

func TestPackedAckRoundTrip(t *testing.T) {
	in := &PackedAck{Applied: []uint64{1, 2, 1 << 40}, Dropped: []uint64{3}}
	var got PackedAck
	packedRoundTrip(t, TAckP, in, &got)
	if !reflect.DeepEqual(&got, in) {
		t.Fatalf("roundtrip = %+v, want %+v", got, *in)
	}
}

// TestPackedHostileCounts pins the count-validation defense: a payload
// whose count field promises more elements than its bytes can hold must
// be rejected before any slice grows.
func TestPackedHostileCounts(t *testing.T) {
	cases := []struct {
		name string
		typ  Type
		buf  []byte
	}{
		// LeaseP: n=1, nFeat=2^30 with no feature bytes.
		{"lease-features", TLeaseP, []byte{1, 0x84, 0x80, 0x80, 0x80, 0x00}},
		// CompleteP: epoch, worker=0, n=2^30, no results.
		{"complete-results", TCompleteP, append(bytes.Repeat([]byte{0}, 8), 0, 0x84, 0x80, 0x80, 0x80, 0x00)},
		// FailP: epoch, n=2^30, no fails.
		{"fail-fails", TFailP, append(bytes.Repeat([]byte{0}, 8), 0x84, 0x80, 0x80, 0x80, 0x00)},
		// TrialsP: epoch, flags, retry, suggest, nTrials=2^30.
		{"trials-count", TTrialsP, append(bytes.Repeat([]byte{0}, 8), 0, 0, 0, 0x84, 0x80, 0x80, 0x80, 0x00)},
		// AckP: nApplied=2^30.
		{"ack-applied", TAckP, []byte{0x84, 0x80, 0x80, 0x80, 0x00}},
	}
	for _, c := range cases {
		msg := payloadFor(c.typ)
		if err := msg.DecodeFrom(c.buf); !errors.Is(err, ErrShort) {
			t.Errorf("%s: DecodeFrom = %v, want ErrShort", c.name, err)
		}
	}
}

// TestPackedTruncation feeds every proper prefix of each packed payload
// to its decoder: all must error, none may panic.
func TestPackedTruncation(t *testing.T) {
	full := map[Type][]byte{
		TLeaseP:    (&PackedLeaseReq{N: 4, Features: []float64{1, 2}}).AppendEncode(nil),
		TTrialsP:   (&PackedTrials{Epoch: 1, Trials: []PackedTrial{{ID: 1, Algo: 1, DeadlineMS: 5, Config: []float64{1}}}}).AppendEncode(nil),
		TCompleteP: (&PackedCompleteReq{Epoch: 1, Worker: 2, Results: []PackedResult{{ID: 1, Value: 2}}}).AppendEncode(nil),
		TFailP:     (&PackedFailReq{Epoch: 1, Fails: []PackedFail{{ID: 1, Kind: FailOther, Msg: "x"}}}).AppendEncode(nil),
		TAckP:      (&PackedAck{Applied: []uint64{1}, Dropped: []uint64{2}}).AppendEncode(nil),
	}
	for typ, buf := range full {
		if err := payloadFor(typ).DecodeFrom(buf); err != nil {
			t.Fatalf("%v: full payload rejected: %v", typ, err)
		}
		for n := 0; n < len(buf); n++ {
			if err := payloadFor(typ).DecodeFrom(buf[:n]); err == nil {
				t.Errorf("%v: %d-byte prefix of %d accepted", typ, n, len(buf))
			}
		}
	}
}

// TestPackedDecodeReuse decodes two different batches into one receiver
// and checks the second result carries no residue of the first — the
// arena/slice reuse must reset lengths, not leak stale elements.
func TestPackedDecodeReuse(t *testing.T) {
	big := (&PackedTrials{Epoch: 1, Trials: []PackedTrial{
		{ID: 1, Algo: 1, Config: []float64{1, 2, 3}},
		{ID: 2, Algo: 0, Config: []float64{4, 5}},
	}}).AppendEncode(nil)
	small := (&PackedTrials{Epoch: 2, Trials: []PackedTrial{
		{ID: 9, Algo: 2, Config: []float64{7}},
	}}).AppendEncode(nil)
	var m PackedTrials
	if err := m.DecodeFrom(big); err != nil {
		t.Fatal(err)
	}
	if err := m.DecodeFrom(small); err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 2 || len(m.Trials) != 1 || m.Trials[0].ID != 9 ||
		!reflect.DeepEqual(m.Trials[0].Config, []float64{7}) {
		t.Fatalf("reused decode = %+v", m)
	}
}

// The acceptance pin for the zero-allocation codec: the packed
// LeaseN/CompleteN hot path — both directions — must not allocate in
// steady state. First iterations may grow internal slices; AllocsPerRun
// runs a warmup round before counting, so only steady-state allocation
// shows up here.

func TestPackedEncodeZeroAllocs(t *testing.T) {
	trials := &PackedTrials{Epoch: 7, Trials: make([]PackedTrial, 16)}
	for i := range trials.Trials {
		trials.Trials[i] = PackedTrial{ID: uint64(i + 1), Algo: i % 3, Config: []float64{1.5, float64(i)}}
	}
	complete := &PackedCompleteReq{Epoch: 7, Worker: 1, Results: make([]PackedResult, 16)}
	for i := range complete.Results {
		complete.Results[i] = PackedResult{ID: uint64(i + 1), Value: float64(i) * 1.25}
	}
	lease := &PackedLeaseReq{N: 16, Features: []float64{27, 0.5}}

	for _, c := range []struct {
		name string
		typ  Type
		p    Payload
	}{
		{"lease", TLeaseP, lease},
		{"trials", TTrialsP, trials},
		{"complete", TCompleteP, complete},
	} {
		buf := make([]byte, 0, 4096)
		allocs := testing.AllocsPerRun(100, func() {
			frame, err := AppendFrame(buf[:0], Version, c.typ, 42, c.p)
			if err != nil {
				t.Fatal(err)
			}
			buf = frame[:0]
		})
		if allocs != 0 {
			t.Errorf("%s encode: %v allocs/op, want 0", c.name, allocs)
		}
	}
}

func TestPackedDecodeZeroAllocs(t *testing.T) {
	trials := &PackedTrials{Epoch: 7, Trials: make([]PackedTrial, 16)}
	for i := range trials.Trials {
		trials.Trials[i] = PackedTrial{ID: uint64(i + 1), Algo: i % 3, Config: []float64{1.5, float64(i)}}
	}
	complete := &PackedCompleteReq{Epoch: 7, Worker: 1, Results: make([]PackedResult, 16)}
	for i := range complete.Results {
		complete.Results[i] = PackedResult{ID: uint64(i + 1), Value: float64(i) * 1.25}
	}
	lease := &PackedLeaseReq{N: 16, Features: []float64{27, 0.5}}

	for _, c := range []struct {
		name string
		pay  []byte
		into Payload
	}{
		{"lease", lease.AppendEncode(nil), &PackedLeaseReq{}},
		{"trials", trials.AppendEncode(nil), &PackedTrials{}},
		{"complete", complete.AppendEncode(nil), &PackedCompleteReq{}},
	} {
		// Warm the receiver's slices once so steady state is measured.
		if err := c.into.DecodeFrom(c.pay); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := c.into.DecodeFrom(c.pay); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s decode: %v allocs/op, want 0", c.name, allocs)
		}
	}
}

// TestFrameReadZeroAllocs pins the full read path: with a reused buffer,
// ReadFrameBuf + packed DecodeFrom allocates nothing in steady state.
func TestFrameReadZeroAllocs(t *testing.T) {
	complete := &PackedCompleteReq{Epoch: 7, Worker: 1, Results: make([]PackedResult, 16)}
	for i := range complete.Results {
		complete.Results[i] = PackedResult{ID: uint64(i + 1), Value: float64(i) * 1.25}
	}
	frame, err := AppendFrame(nil, Version, TCompleteP, 9, complete)
	if err != nil {
		t.Fatal(err)
	}
	var got PackedCompleteReq
	buf := make([]byte, 0, 4096)
	rd := bytes.NewReader(frame)
	allocs := testing.AllocsPerRun(100, func() {
		rd.Reset(frame)
		var typ Type
		var payload []byte
		var err error
		typ, _, payload, buf, err = ReadFrameBuf(rd, buf)
		if err != nil || typ != TCompleteP {
			t.Fatal(typ, err)
		}
		if err := got.DecodeFrom(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("read path: %v allocs/op, want 0", allocs)
	}
}
