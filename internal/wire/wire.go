// Package wire is the framed binary protocol of the distributed tuning
// service: the on-the-wire form of the trial engine's Lease/Complete/
// Fail lifecycle plus the handshake and introspection messages around
// it.
//
// Every message travels in one frame:
//
//	offset  size  field
//	0       4     magic   0x41545731 ("ATW1"), big-endian
//	4       1     version (currently 3; 1 and 2 still decoded)
//	5       1     type    (Type)
//	6       2     flags   — correlation ID on v3 frames (see below);
//	              reserved-zero on v1/v2 frames
//	8       4     payload length in bytes (≤ MaxPayload)
//	12      4     IEEE CRC32 of the payload bytes
//	16      …     payload (Payload encoding of the message struct)
//
// The length prefix bounds the read before any allocation, the CRC
// rejects corruption that TCP's checksum missed (and torn writes when
// frames are replayed from files), and the version byte lets formats
// coexist on the same port.
//
// Payload encodings come in two families. The handshake and
// introspection messages are JSON: debuggable and extensible — unknown
// fields are ignored on decode, so additive evolution needs no version
// bump. The trial hot path (v3) is packed binary instead: fixed-width
// value fields, varint indices and counts, no per-trial allocation on
// either side (see packed.go). Both families implement the one Payload
// interface, so the frame layer never cares which it is carrying.
//
// v3 frames repurpose the previously reserved-zero flags field as a
// correlation ID: a pipelined peer stamps each request with a nonzero
// ID and the responder echoes it, so responses may return out of order
// on one connection. v1/v2 decoders reject nonzero flags, which is
// exactly right — they speak strict request/response lockstep.
//
// The same decode path is fuzzed (FuzzWireDecode): arbitrary bytes must
// produce an error, never a panic or an oversized allocation.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Frame constants.
const (
	// Magic leads every frame; anything else is not this protocol.
	Magic = 0x41545731 // "ATW1"
	// Version is the current protocol version. A decoder refuses frames
	// from a future version rather than misinterpreting them, and accepts
	// every version back to 1 — old payloads only ever grew by optional
	// JSON fields, so they decode fine under a new version.
	//
	// Version history:
	//
	//	1  initial protocol (PR 4); Absorb/Calibrate added additively
	//	2  multi-tenancy: Hello.Tenant routes the session to a named
	//	   tenant, TTenants/TTenantsAck list all tenants. A v1 client
	//	   omits Tenant and lands on the "default" tenant; servers
	//	   answer a v1 session with v1-stamped frames.
	//	3  hot path: packed binary trial payloads (TLeaseP/TTrialsP/
	//	   TCompleteP/TFailP/TAckP), and the frame flags field becomes a
	//	   correlation ID so requests pipeline per connection and
	//	   responses return out of order. v1/v2 sessions keep JSON
	//	   payloads, zero flags and lockstep, stamped at their version.
	Version = 3
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 16
	// MaxPayload bounds a frame's payload: the decoder rejects larger
	// length prefixes before allocating, so a corrupt or hostile length
	// field cannot balloon memory. 4 MiB comfortably fits the largest
	// legitimate message (a maximal LeaseN response) with two orders of
	// magnitude to spare.
	MaxPayload = 4 << 20
)

// Payload is the one codec surface every message implements.
// AppendEncode appends the payload's encoding to buf and returns the
// extended slice — append-style, so encoders compose into pooled
// buffers without intermediate allocation. DecodeFrom parses the
// payload from buf, reusing the receiver's internal slices where it can
// (hot-path packed types decode with zero steady-state allocations);
// the receiver must not retain buf beyond the call. Encoding a payload
// our own structs produce cannot fail, so AppendEncode returns no
// error; DecodeFrom must reject, never panic on, arbitrary bytes.
type Payload interface {
	AppendEncode(buf []byte) []byte
	DecodeFrom(buf []byte) error
}

// encodeFailure carries an AppendEncode marshal failure across the
// panic boundary (the Payload interface has no error return);
// AppendFrame converts it back into an ordinary error.
type encodeFailure struct{ err error }

// appendJSON is the AppendEncode body shared by the JSON payload
// family. Marshalling plain exported data structs fails only on
// unencodable values — a NaN or Inf a caller smuggled into a float
// field — so the failure panics with encodeFailure rather than forcing
// an error return through every encoder; AppendFrame recovers it.
func appendJSON(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(encodeFailure{fmt.Errorf("wire: marshal %T: %v", v, err)})
	}
	return append(buf, b...)
}

// decodeJSON is the DecodeFrom body shared by the JSON payload family.
// An empty payload is an error for every message that expects a body.
func decodeJSON(buf []byte, v any) error {
	if len(buf) == 0 {
		return errors.New("wire: empty payload")
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("wire: payload: %v", err)
	}
	return nil
}

// Type identifies a message within a frame.
type Type uint8

// Message types. Requests and responses are distinct types so a decoder
// never needs context to interpret a frame.
const (
	TInvalid Type = iota
	THello
	THelloAck
	TLeaseN
	TTrials
	TCompleteN
	TFailN
	TAck
	THeartbeat
	THeartbeatAck
	TBest
	TBestAck
	TStats
	TStatsAck
	TError
	TAbsorb
	TAbsorbAck
	TCalibrate
	TCalibrateAck
	TTenants
	TTenantsAck

	// Packed hot-path types (v3): binary payloads, see packed.go.
	TLeaseP
	TTrialsP
	TCompleteP
	TFailP
	TAckP

	numTypes
)

// Packed reports whether a type carries a packed binary payload, which
// only v3 frames may do.
func (t Type) Packed() bool { return t >= TLeaseP && t <= TAckP }

// String names the type for diagnostics.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case THelloAck:
		return "hello-ack"
	case TLeaseN:
		return "lease-n"
	case TTrials:
		return "trials"
	case TCompleteN:
		return "complete-n"
	case TFailN:
		return "fail-n"
	case TAck:
		return "ack"
	case THeartbeat:
		return "heartbeat"
	case THeartbeatAck:
		return "heartbeat-ack"
	case TBest:
		return "best"
	case TBestAck:
		return "best-ack"
	case TStats:
		return "stats"
	case TStatsAck:
		return "stats-ack"
	case TError:
		return "error"
	case TAbsorb:
		return "absorb"
	case TAbsorbAck:
		return "absorb-ack"
	case TCalibrate:
		return "calibrate"
	case TCalibrateAck:
		return "calibrate-ack"
	case TTenants:
		return "tenants"
	case TTenantsAck:
		return "tenants-ack"
	case TLeaseP:
		return "lease-p"
	case TTrialsP:
		return "trials-p"
	case TCompleteP:
		return "complete-p"
	case TFailP:
		return "fail-p"
	case TAckP:
		return "ack-p"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Frame decoding errors. I/O errors from the underlying reader pass
// through unwrapped (io.EOF before any header byte means a clean
// connection close).
var (
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrBadFlags   = errors.New("wire: nonzero reserved flags")
	ErrOversize   = errors.New("wire: frame exceeds MaxPayload")
	ErrChecksum   = errors.New("wire: payload checksum mismatch")
	ErrShort      = errors.New("wire: truncated payload")
)

// bufPool recycles frame buffers across encodes and reads, so the hot
// path neither allocates a frame per message nor holds peak-sized
// buffers forever. Buffers start at 4 KiB; ones grown past 64 KiB are
// dropped instead of pooled, keeping a single jumbo frame from pinning
// memory.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// GetBuf borrows a zero-length frame buffer from the codec pool.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a buffer borrowed with GetBuf. Oversized buffers are
// dropped.
func PutBuf(b *[]byte) {
	if cap(*b) > 64<<10 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// AppendFrame appends one whole frame — header and encoded payload — to
// dst and returns the extended slice. corr is the v3 correlation ID;
// it must be zero when version < 3 (those decoders reject nonzero
// flags), and packed payload types are refused below v3. A nil p
// encodes an empty payload (the bodyless requests TBest, TStats and
// TTenants). This is the zero-allocation encode path: with a pooled
// dst it allocates nothing in steady state.
func AppendFrame(dst []byte, version byte, typ Type, corr uint16, p Payload) (out []byte, err error) {
	if version == 0 || version > Version {
		return dst, ErrBadVersion
	}
	start := len(dst)
	defer func() {
		if r := recover(); r != nil {
			ef, ok := r.(encodeFailure)
			if !ok {
				panic(r)
			}
			out, err = dst[:start], ef.err
		}
	}()
	if typ <= TInvalid || typ >= numTypes {
		return dst, ErrBadType
	}
	if version < 3 {
		if corr != 0 {
			return dst, ErrBadFlags
		}
		if typ.Packed() {
			return dst, fmt.Errorf("%w: packed %s frame needs version 3", ErrBadVersion, typ)
		}
	}
	dst = append(dst, make([]byte, HeaderSize)...)
	if p != nil {
		dst = p.AppendEncode(dst)
	}
	payload := dst[start+HeaderSize:]
	if len(payload) > MaxPayload {
		return dst[:start], ErrOversize
	}
	hdr := dst[start : start+HeaderSize]
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = version
	hdr[5] = byte(typ)
	binary.BigEndian.PutUint16(hdr[6:8], corr)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// Encode marshals p and wraps it in a frame stamped with the current
// Version, returning the full frame bytes.
func Encode(typ Type, p Payload) ([]byte, error) {
	return EncodeV(Version, typ, p)
}

// EncodeV is Encode with an explicit frame version stamp, for answering
// an old client in frames its decoder accepts (a v1 ReadFrame refuses
// anything newer than v1) and for building backward-compat test
// corpora. The version must be in [1, Version]; the JSON payload
// encoding is identical across versions — only optional fields were
// ever added — while packed payloads exist from v3 on.
func EncodeV(version byte, typ Type, p Payload) ([]byte, error) {
	return AppendFrame(nil, version, typ, 0, p)
}

// WriteMsg encodes p and writes the frame to w.
func WriteMsg(w io.Writer, typ Type, p Payload) error {
	return WriteMsgV(w, Version, typ, p)
}

// WriteMsgV is WriteMsg with an explicit frame version stamp (see
// EncodeV): a server holds each session at the version its client's
// Hello arrived under, so old decoders never see frames they refuse.
// The frame buffer is pooled — one Write, no steady-state allocation.
func WriteMsgV(w io.Writer, version byte, typ Type, p Payload) error {
	return WriteFrame(w, version, typ, 0, p)
}

// WriteFrame encodes p with a correlation ID and writes the frame to w
// in a single Write call, using a pooled buffer.
func WriteFrame(w io.Writer, version byte, typ Type, corr uint16, p Payload) error {
	bp := GetBuf()
	frame, err := AppendFrame(*bp, version, typ, corr, p)
	if err != nil {
		PutBuf(bp)
		return err
	}
	_, err = w.Write(frame)
	*bp = frame[:0]
	PutBuf(bp)
	return err
}

// ReadFrame reads and validates one frame from r, returning the message
// type and payload bytes. The payload is freshly allocated; the
// correlation ID is validated but discarded — pipelined readers use
// ReadFrameBuf.
func ReadFrame(r io.Reader) (Type, []byte, error) {
	typ, _, payload, _, err := ReadFrameBuf(r, nil)
	return typ, payload, err
}

// ReadFrameBuf reads and validates one frame from r into buf, growing
// it as needed, and returns the message type, the correlation ID, the
// payload (a sub-slice of the returned buffer — valid only until the
// buffer's next use) and the buffer for reuse. Passing the returned
// buffer back in makes steady-state reads allocation-free.
//
// The payload read is bounded by the validated length prefix
// (≤ MaxPayload); every malformed header field is rejected before the
// payload is read. Nonzero flags are accepted only on v3 frames, where
// they are the correlation ID. io.EOF is returned unwrapped only when
// the stream ends cleanly before the first header byte; a header or
// payload cut short mid-frame is io.ErrUnexpectedEOF.
func ReadFrameBuf(r io.Reader, buf []byte) (typ Type, corr uint16, payload, nbuf []byte, err error) {
	// The header is read into the reusable buffer too — a stack array
	// would escape through the io.Reader interface and cost an
	// allocation per frame.
	if cap(buf) < HeaderSize {
		buf = make([]byte, 0, 4096)
	}
	hdr := buf[:HeaderSize]
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return TInvalid, 0, nil, buf, err // clean EOF at a frame boundary
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return TInvalid, 0, nil, buf, err
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return TInvalid, 0, nil, buf, ErrBadMagic
	}
	version := hdr[4]
	if version == 0 || version > Version {
		return TInvalid, 0, nil, buf, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	typ = Type(hdr[5])
	if typ <= TInvalid || typ >= numTypes {
		return TInvalid, 0, nil, buf, fmt.Errorf("%w: %d", ErrBadType, hdr[5])
	}
	corr = binary.BigEndian.Uint16(hdr[6:8])
	if corr != 0 && version < 3 {
		return TInvalid, 0, nil, buf, ErrBadFlags
	}
	if typ.Packed() && version < 3 {
		return TInvalid, 0, nil, buf, fmt.Errorf("%w: packed %s frame stamped v%d", ErrBadVersion, typ, version)
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > MaxPayload {
		return TInvalid, 0, nil, buf, fmt.Errorf("%w: %d bytes", ErrOversize, n)
	}
	want := binary.BigEndian.Uint32(hdr[12:16])
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return TInvalid, 0, nil, buf, err
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return TInvalid, 0, nil, buf, fmt.Errorf("%w (want %08x, got %08x)", ErrChecksum, want, got)
	}
	return typ, corr, payload, buf[:cap(buf)], nil
}
