// Package wire is the framed binary protocol of the distributed tuning
// service: the on-the-wire form of the trial engine's Lease/Complete/
// Fail lifecycle plus the handshake and introspection messages around
// it.
//
// Every message travels in one frame:
//
//	offset  size  field
//	0       4     magic   0x41545731 ("ATW1"), big-endian
//	4       1     version (currently 2; 1 still decoded)
//	5       1     type    (Type)
//	6       2     flags   (reserved, must be zero)
//	8       4     payload length in bytes (≤ MaxPayload)
//	12      4     IEEE CRC32 of the payload bytes
//	16      …     payload (JSON encoding of the message struct)
//
// The length prefix bounds the read before any allocation, the CRC
// rejects corruption that TCP's checksum missed (and torn writes when
// frames are replayed from files), and the version byte lets a future
// format coexist with this one on the same port. JSON payloads keep the
// messages debuggable and extensible — unknown fields are ignored on
// decode, so additive evolution needs no version bump — while the frame
// around them stays fixed-size and binary. The same decode path is
// fuzzed (FuzzWireDecode): arbitrary bytes must produce an error, never
// a panic or an oversized allocation.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame constants.
const (
	// Magic leads every frame; anything else is not this protocol.
	Magic = 0x41545731 // "ATW1"
	// Version is the current protocol version. A decoder refuses frames
	// from a future version rather than misinterpreting them, and accepts
	// every version back to 1 — frames only ever grow by optional JSON
	// fields, so an old payload decodes fine under a new version.
	//
	// Version history:
	//
	//	1  initial protocol (PR 4); Absorb/Calibrate added additively
	//	2  multi-tenancy: Hello.Tenant routes the session to a named
	//	   tenant, TTenants/TTenantsAck list all tenants. A v1 client
	//	   omits Tenant and lands on the "default" tenant; servers
	//	   answer a v1 session with v1-stamped frames.
	Version = 2
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 16
	// MaxPayload bounds a frame's payload: the decoder rejects larger
	// length prefixes before allocating, so a corrupt or hostile length
	// field cannot balloon memory. 4 MiB comfortably fits the largest
	// legitimate message (a maximal LeaseN response) with two orders of
	// magnitude to spare.
	MaxPayload = 4 << 20
)

// Type identifies a message within a frame.
type Type uint8

// Message types. Requests and responses are distinct types so a decoder
// never needs context to interpret a frame.
const (
	TInvalid Type = iota
	THello
	THelloAck
	TLeaseN
	TTrials
	TCompleteN
	TFailN
	TAck
	THeartbeat
	THeartbeatAck
	TBest
	TBestAck
	TStats
	TStatsAck
	TError
	TAbsorb
	TAbsorbAck
	TCalibrate
	TCalibrateAck
	TTenants
	TTenantsAck

	numTypes
)

// String names the type for diagnostics.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case THelloAck:
		return "hello-ack"
	case TLeaseN:
		return "lease-n"
	case TTrials:
		return "trials"
	case TCompleteN:
		return "complete-n"
	case TFailN:
		return "fail-n"
	case TAck:
		return "ack"
	case THeartbeat:
		return "heartbeat"
	case THeartbeatAck:
		return "heartbeat-ack"
	case TBest:
		return "best"
	case TBestAck:
		return "best-ack"
	case TStats:
		return "stats"
	case TStatsAck:
		return "stats-ack"
	case TError:
		return "error"
	case TAbsorb:
		return "absorb"
	case TAbsorbAck:
		return "absorb-ack"
	case TCalibrate:
		return "calibrate"
	case TCalibrateAck:
		return "calibrate-ack"
	case TTenants:
		return "tenants"
	case TTenantsAck:
		return "tenants-ack"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Frame decoding errors. I/O errors from the underlying reader pass
// through unwrapped (io.EOF before any header byte means a clean
// connection close).
var (
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrBadFlags   = errors.New("wire: nonzero reserved flags")
	ErrOversize   = errors.New("wire: frame exceeds MaxPayload")
	ErrChecksum   = errors.New("wire: payload checksum mismatch")
)

// Encode marshals v and wraps it in a frame stamped with the current
// Version, returning the full frame bytes. A nil v encodes an empty
// payload (the bodyless requests TBest, TStats and TTenants).
func Encode(typ Type, v any) ([]byte, error) {
	return EncodeV(Version, typ, v)
}

// EncodeV is Encode with an explicit frame version stamp, for answering
// an old client in frames its decoder accepts (a v1 ReadFrame refuses
// anything newer than v1) and for building backward-compat test
// corpora. The version must be in [1, Version]; the payload encoding is
// identical across versions — only optional fields were ever added.
func EncodeV(version byte, typ Type, v any) ([]byte, error) {
	if version == 0 || version > Version {
		return nil, ErrBadVersion
	}
	if typ <= TInvalid || typ >= numTypes {
		return nil, ErrBadType
	}
	var payload []byte
	if v != nil {
		var err error
		payload, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("wire: marshal %s: %w", typ, err)
		}
	}
	if len(payload) > MaxPayload {
		return nil, ErrOversize
	}
	frame := make([]byte, HeaderSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], Magic)
	frame[4] = version
	frame[5] = byte(typ)
	// frame[6:8] flags stay zero.
	binary.BigEndian.PutUint32(frame[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[12:16], crc32.ChecksumIEEE(payload))
	copy(frame[HeaderSize:], payload)
	return frame, nil
}

// WriteMsg encodes v and writes the frame to w.
func WriteMsg(w io.Writer, typ Type, v any) error {
	return WriteMsgV(w, Version, typ, v)
}

// WriteMsgV is WriteMsg with an explicit frame version stamp (see
// EncodeV): a server holds each session at the version its client's
// Hello arrived under, so old decoders never see frames they refuse.
func WriteMsgV(w io.Writer, version byte, typ Type, v any) error {
	frame, err := EncodeV(version, typ, v)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadFrame reads and validates one frame from r, returning the message
// type and payload bytes. The payload allocation is bounded by the
// validated length prefix (≤ MaxPayload); every malformed header field
// is rejected before the payload is read. io.EOF is returned unwrapped
// only when the stream ends cleanly before the first header byte; a
// header or payload cut short mid-frame is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Type, []byte, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return TInvalid, nil, err // clean EOF at a frame boundary
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return TInvalid, nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return TInvalid, nil, ErrBadMagic
	}
	if v := hdr[4]; v == 0 || v > Version {
		return TInvalid, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	typ := Type(hdr[5])
	if typ <= TInvalid || typ >= numTypes {
		return TInvalid, nil, fmt.Errorf("%w: %d", ErrBadType, hdr[5])
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return TInvalid, nil, ErrBadFlags
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > MaxPayload {
		return TInvalid, nil, fmt.Errorf("%w: %d bytes", ErrOversize, n)
	}
	want := binary.BigEndian.Uint32(hdr[12:16])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return TInvalid, nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return TInvalid, nil, fmt.Errorf("%w (want %08x, got %08x)", ErrChecksum, want, got)
	}
	return typ, payload, nil
}

// Unmarshal decodes a frame payload into v. An empty payload is an
// error for every message that expects a body.
func Unmarshal(payload []byte, v any) error {
	if len(payload) == 0 {
		return errors.New("wire: empty payload")
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("wire: payload: %v", err)
	}
	return nil
}
