package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	req := LeaseNReq{N: 16, Features: []float64{27, 0.5}}
	frame, err := Encode(TLeaseN, req)
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if typ != TLeaseN {
		t.Fatalf("type = %v, want %v", typ, TLeaseN)
	}
	var got LeaseNReq
	if err := Unmarshal(payload, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("roundtrip = %+v, want %+v", got, req)
	}
}

func TestRoundTripEmptyPayload(t *testing.T) {
	frame, err := Encode(TBest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != HeaderSize {
		t.Fatalf("bodyless frame is %d bytes, want %d", len(frame), HeaderSize)
	}
	typ, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil || typ != TBest || len(payload) != 0 {
		t.Fatalf("ReadFrame = (%v, %d bytes, %v)", typ, len(payload), err)
	}
}

func TestStreamedFrames(t *testing.T) {
	var buf bytes.Buffer
	msgs := []struct {
		typ Type
		v   any
	}{
		{THello, Hello{Proto: Version, Name: "w1"}},
		{TCompleteN, CompleteNReq{Epoch: 7, Results: []Result{{ID: 1, Value: 2.5}}}},
		{TStats, nil},
	}
	for _, m := range msgs {
		if err := WriteMsg(&buf, m.typ, m.v); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range msgs {
		typ, _, err := ReadFrame(&buf)
		if err != nil || typ != m.typ {
			t.Fatalf("frame %d: (%v, %v), want type %v", i, typ, err, m.typ)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("past the last frame: %v, want io.EOF", err)
	}
}

// mutateHeader encodes a valid frame and flips one header field.
func mutateHeader(t *testing.T, mutate func(frame []byte)) error {
	t.Helper()
	frame, err := Encode(THeartbeat, HeartbeatReq{IDs: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	mutate(frame)
	_, _, err = ReadFrame(bytes.NewReader(frame))
	return err
}

func TestRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte)
		want   error
	}{
		{"magic", func(f []byte) { f[0] = 'X' }, ErrBadMagic},
		{"version-zero", func(f []byte) { f[4] = 0 }, ErrBadVersion},
		{"version-future", func(f []byte) { f[4] = Version + 1 }, ErrBadVersion},
		{"type-zero", func(f []byte) { f[5] = 0 }, ErrBadType},
		{"type-unknown", func(f []byte) { f[5] = byte(numTypes) }, ErrBadType},
		{"flags", func(f []byte) { f[6] = 1 }, ErrBadFlags},
		{"oversize", func(f []byte) { binary.BigEndian.PutUint32(f[8:12], MaxPayload+1) }, ErrOversize},
		{"payload-corrupt", func(f []byte) { f[HeaderSize] ^= 0xff }, ErrChecksum},
		{"crc-corrupt", func(f []byte) { f[12] ^= 0xff }, ErrChecksum},
	}
	for _, c := range cases {
		if err := mutateHeader(t, c.mutate); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestTruncated(t *testing.T) {
	frame, err := Encode(TTrials, LeaseNResp{Epoch: 1, Trials: []Trial{{ID: 9, Algo: 1, Config: []float64{0.5}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail with ErrUnexpectedEOF (or io.EOF for
	// the empty prefix), never hang or panic.
	for n := 0; n < len(frame); n++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:n]))
		switch {
		case n == 0 && err != io.EOF:
			t.Fatalf("empty stream: %v, want io.EOF", err)
		case n > 0 && !errors.Is(err, io.ErrUnexpectedEOF):
			t.Fatalf("prefix of %d bytes: %v, want io.ErrUnexpectedEOF", n, err)
		}
	}
}

func TestEncodeRejectsBadType(t *testing.T) {
	if _, err := Encode(TInvalid, nil); !errors.Is(err, ErrBadType) {
		t.Fatalf("Encode(TInvalid) = %v", err)
	}
	if _, err := Encode(numTypes, nil); !errors.Is(err, ErrBadType) {
		t.Fatalf("Encode(numTypes) = %v", err)
	}
}
