package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	req := &LeaseNReq{N: 16, Features: []float64{27, 0.5}}
	frame, err := Encode(TLeaseN, req)
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if typ != TLeaseN {
		t.Fatalf("type = %v, want %v", typ, TLeaseN)
	}
	var got LeaseNReq
	if err := got.DecodeFrom(payload); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, req) {
		t.Fatalf("roundtrip = %+v, want %+v", got, req)
	}
}

func TestRoundTripEmptyPayload(t *testing.T) {
	frame, err := Encode(TBest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != HeaderSize {
		t.Fatalf("bodyless frame is %d bytes, want %d", len(frame), HeaderSize)
	}
	typ, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil || typ != TBest || len(payload) != 0 {
		t.Fatalf("ReadFrame = (%v, %d bytes, %v)", typ, len(payload), err)
	}
}

func TestStreamedFrames(t *testing.T) {
	var buf bytes.Buffer
	msgs := []struct {
		typ Type
		v   Payload
	}{
		{THello, &Hello{Proto: Version, Name: "w1"}},
		{TCompleteN, &CompleteNReq{Epoch: 7, Results: []Result{{ID: 1, Value: 2.5}}}},
		{TStats, nil},
	}
	for _, m := range msgs {
		if err := WriteMsg(&buf, m.typ, m.v); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range msgs {
		typ, _, err := ReadFrame(&buf)
		if err != nil || typ != m.typ {
			t.Fatalf("frame %d: (%v, %v), want type %v", i, typ, err, m.typ)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("past the last frame: %v, want io.EOF", err)
	}
}

// TestCorrelationID proves the v3 flag field carries the correlation ID
// round trip, and that pre-v3 frames still reject nonzero flags in both
// directions.
func TestCorrelationID(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Version, THeartbeat, 0xBEEF, &HeartbeatReq{Epoch: 1, IDs: []uint64{4}}); err != nil {
		t.Fatal(err)
	}
	typ, corr, payload, _, err := ReadFrameBuf(&buf, nil)
	if err != nil || typ != THeartbeat || corr != 0xBEEF {
		t.Fatalf("ReadFrameBuf = (%v, %04x, %v), want heartbeat corr beef", typ, corr, err)
	}
	var req HeartbeatReq
	if err := req.DecodeFrom(payload); err != nil || req.IDs[0] != 4 {
		t.Fatalf("payload decode: %+v, %v", req, err)
	}
	// Encoding a correlation ID into a pre-v3 frame must be refused…
	if _, err := AppendFrame(nil, 2, THeartbeat, 1, &HeartbeatReq{}); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("v2 frame with corr: %v, want ErrBadFlags", err)
	}
	// …and a pre-v3 frame arriving with nonzero flags is corrupt.
	frame, err := EncodeV(2, THeartbeat, &HeartbeatReq{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	frame[6] = 1
	if _, _, err := ReadFrame(bytes.NewReader(frame)); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("v2 frame with flags: %v, want ErrBadFlags", err)
	}
}

// TestPackedNeedsV3 pins the version gate on the packed types: they
// cannot be stamped into pre-v3 frames, and a pre-v3 frame claiming a
// packed type is rejected on read.
func TestPackedNeedsV3(t *testing.T) {
	if _, err := EncodeV(2, TCompleteP, &PackedCompleteReq{Epoch: 1}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("EncodeV(2, packed) = %v, want ErrBadVersion", err)
	}
	frame, err := Encode(TCompleteP, &PackedCompleteReq{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(frame)
	mut[4] = 2
	if _, _, err := ReadFrame(bytes.NewReader(mut)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("v2-stamped packed frame: %v, want ErrBadVersion", err)
	}
}

// TestReadFrameBufReuse proves the read buffer round-trips: the second
// read reuses the first read's buffer when it is large enough.
func TestReadFrameBufReuse(t *testing.T) {
	var stream bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteMsg(&stream, TAck, &AckResp{Applied: []uint64{uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	var lastCap int
	for i := 0; i < 3; i++ {
		var typ Type
		var payload []byte
		var err error
		typ, _, payload, buf, err = ReadFrameBuf(&stream, buf)
		if err != nil || typ != TAck {
			t.Fatalf("read %d: (%v, %v)", i, typ, err)
		}
		var ack AckResp
		if err := ack.DecodeFrom(payload); err != nil || ack.Applied[0] != uint64(i) {
			t.Fatalf("read %d: %+v, %v", i, ack, err)
		}
		if i > 0 && cap(buf) != lastCap {
			t.Fatalf("read %d reallocated the buffer (cap %d → %d)", i, lastCap, cap(buf))
		}
		lastCap = cap(buf)
	}
}

// TestJSONByteCompat pins the v1/v2 byte contract: the JSON payload
// family still encodes as plain JSON a pre-redesign decoder would
// parse, and the frame bytes around it are identical across version
// stamps except for the version byte itself.
func TestJSONByteCompat(t *testing.T) {
	req := &CompleteNReq{Epoch: 42, Worker: 7, Results: []Result{{ID: 9, Value: 1.5}}}
	frame, err := EncodeV(2, TCompleteN, req)
	if err != nil {
		t.Fatal(err)
	}
	var legacy struct {
		Epoch   int64  `json:"epoch"`
		Worker  uint64 `json:"worker"`
		Results []struct {
			ID    uint64  `json:"id"`
			Value float64 `json:"value"`
		} `json:"results"`
	}
	if err := json.Unmarshal(frame[HeaderSize:], &legacy); err != nil {
		t.Fatalf("payload is not plain JSON: %v", err)
	}
	if legacy.Epoch != 42 || legacy.Worker != 7 || len(legacy.Results) != 1 || legacy.Results[0].ID != 9 {
		t.Fatalf("legacy decode = %+v", legacy)
	}
	v1, err := EncodeV(1, TCompleteN, req)
	if err != nil {
		t.Fatal(err)
	}
	if v1[4] != 1 || frame[4] != 2 {
		t.Fatalf("version stamps = %d, %d", v1[4], frame[4])
	}
	v1[4] = 2
	if !bytes.Equal(v1, frame) {
		t.Fatal("v1 and v2 frames differ beyond the version byte")
	}
}

// mutateHeader encodes a valid frame and flips one header field.
func mutateHeader(t *testing.T, mutate func(frame []byte)) error {
	t.Helper()
	frame, err := Encode(THeartbeat, &HeartbeatReq{IDs: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	mutate(frame)
	_, _, err = ReadFrame(bytes.NewReader(frame))
	return err
}

func TestRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte)
		want   error
	}{
		{"magic", func(f []byte) { f[0] = 'X' }, ErrBadMagic},
		{"version-zero", func(f []byte) { f[4] = 0 }, ErrBadVersion},
		{"version-future", func(f []byte) { f[4] = Version + 1 }, ErrBadVersion},
		{"type-zero", func(f []byte) { f[5] = 0 }, ErrBadType},
		{"type-unknown", func(f []byte) { f[5] = byte(numTypes) }, ErrBadType},
		{"flags-pre-v3", func(f []byte) { f[4] = 2; f[6] = 1 }, ErrBadFlags},
		{"oversize", func(f []byte) { binary.BigEndian.PutUint32(f[8:12], MaxPayload+1) }, ErrOversize},
		{"payload-corrupt", func(f []byte) { f[HeaderSize] ^= 0xff }, ErrChecksum},
		{"crc-corrupt", func(f []byte) { f[12] ^= 0xff }, ErrChecksum},
	}
	for _, c := range cases {
		if err := mutateHeader(t, c.mutate); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestTruncated(t *testing.T) {
	frame, err := Encode(TTrials, &LeaseNResp{Epoch: 1, Trials: []Trial{{ID: 9, Algo: 1, Config: []float64{0.5}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail with ErrUnexpectedEOF (or io.EOF for
	// the empty prefix), never hang or panic.
	for n := 0; n < len(frame); n++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:n]))
		switch {
		case n == 0 && err != io.EOF:
			t.Fatalf("empty stream: %v, want io.EOF", err)
		case n > 0 && !errors.Is(err, io.ErrUnexpectedEOF):
			t.Fatalf("prefix of %d bytes: %v, want io.ErrUnexpectedEOF", n, err)
		}
	}
}

func TestEncodeRejectsBadType(t *testing.T) {
	if _, err := Encode(TInvalid, nil); !errors.Is(err, ErrBadType) {
		t.Fatalf("Encode(TInvalid) = %v", err)
	}
	if _, err := Encode(numTypes, nil); !errors.Is(err, ErrBadType) {
		t.Fatalf("Encode(numTypes) = %v", err)
	}
}
