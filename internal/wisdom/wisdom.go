// Package wisdom persists tuning results across application runs, in the
// spirit of FFTW's wisdom files (the first system the paper's related-work
// section cites): once the online tuner has learned the best algorithm and
// configuration for a context, the next run starts from that knowledge
// instead of from scratch.
//
// A Store maps context keys — application-defined strings describing the
// tuned operation, its input regime, and the machine — to the best known
// (algorithm, configuration, value) triple. Stores merge monotonically:
// an entry only ever improves. The JSON encoding is stable and
// human-inspectable.
package wisdom

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/param"
)

// An Entry is the best known tuning result for one context.
type Entry struct {
	// Algorithm is the winning algorithm's name.
	Algorithm string `json:"algorithm"`
	// Config is the winning configuration (internal representation).
	Config []float64 `json:"config,omitempty"`
	// Value is the measured value of the winner (lower is better).
	Value float64 `json:"value"`
	// Samples counts how many observations back this entry.
	Samples int `json:"samples"`
}

// Store is a concurrency-safe wisdom store.
type Store struct {
	mu      sync.Mutex
	entries map[string]Entry
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{entries: make(map[string]Entry)}
}

// Key builds a canonical context key from free-form parts, appending the
// machine signature (GOOS/GOARCH/GOMAXPROCS) so wisdom learned on one
// machine is not silently applied to another — the paper's context
// K = (K_A, K_S) made concrete.
//
// Parts are free-form: a part containing the `|` separator (or a
// backslash) is escaped before joining, so Key("a|b") and Key("a", "b")
// produce distinct keys. KeyParts inverts the encoding.
func Key(parts ...string) string {
	all := make([]string, 0, len(parts)+1)
	for _, p := range parts {
		all = append(all, escapePart(p))
	}
	all = append(all, fmt.Sprintf("%s/%s/p%d", runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)))
	return strings.Join(all, "|")
}

// escapePart makes a free-form part safe to join with `|`: backslashes
// double, separators gain a backslash.
func escapePart(p string) string {
	p = strings.ReplaceAll(p, `\`, `\\`)
	return strings.ReplaceAll(p, "|", `\|`)
}

// KeyParts splits a key built by Key back into its parts, undoing the
// escaping. The trailing machine-signature part is included; it never
// contains escapes. Round-trip: KeyParts(Key(parts...)) == parts + sig.
func KeyParts(key string) []string {
	var parts []string
	var cur strings.Builder
	escaped := false
	for _, r := range key {
		switch {
		case escaped:
			cur.WriteRune(r)
			escaped = false
		case r == '\\':
			escaped = true
		case r == '|':
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	return append(parts, cur.String())
}

// Lookup returns the entry for a context key.
func (s *Store) Lookup(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

// Record offers a result for a context; it is kept only if it improves on
// the stored value. It returns true when the entry was updated.
func (s *Store) Record(key, algorithm string, cfg param.Config, value float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.entries[key]
	if ok && old.Value <= value {
		old.Samples++
		s.entries[key] = old
		return false
	}
	samples := 1
	if ok {
		samples = old.Samples + 1
	}
	var c []float64
	if cfg != nil {
		c = append([]float64{}, cfg...)
	}
	s.entries[key] = Entry{Algorithm: algorithm, Config: c, Value: value, Samples: samples}
	return true
}

// Keys returns all context keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Merge folds another store's entries in, keeping the better value per
// key. It returns the number of entries that changed.
func (s *Store) Merge(o *Store) int {
	o.mu.Lock()
	other := make(map[string]Entry, len(o.entries))
	for k, v := range o.entries {
		other[k] = v
	}
	o.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	changed := 0
	for k, v := range other {
		if old, ok := s.entries[k]; !ok || v.Value < old.Value {
			s.entries[k] = v
			changed++
		}
	}
	return changed
}

// Save writes the store as indented JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	snapshot := make(map[string]Entry, len(s.entries))
	for k, v := range s.entries {
		snapshot[k] = v
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snapshot)
}

// Load reads a store previously written by Save, replacing the contents.
// Entries are validated on the way in: a non-finite value, a negative
// sample count, or an empty algorithm name mark a corrupt or hand-mangled
// file, and admitting them would poison every later comparison (a NaN
// value, for instance, never loses a Record comparison), so Load rejects
// the whole file with a descriptive error instead.
func Load(r io.Reader) (*Store, error) {
	var entries map[string]Entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("wisdom: decode: %w", err)
	}
	for k, e := range entries {
		switch {
		case math.IsNaN(e.Value) || math.IsInf(e.Value, 0):
			return nil, fmt.Errorf("wisdom: entry %q has non-finite value %v", k, e.Value)
		case e.Samples < 0:
			return nil, fmt.Errorf("wisdom: entry %q has negative sample count %d", k, e.Samples)
		case e.Algorithm == "":
			return nil, fmt.Errorf("wisdom: entry %q has no algorithm name", k)
		}
	}
	if entries == nil {
		entries = make(map[string]Entry)
	}
	return &Store{entries: entries}, nil
}

// SaveFile writes the store to a file (0644) atomically: the JSON goes
// to a temp file in the same directory, is fsynced, and renamed over the
// target, so a crash mid-save can never destroy the previous wisdom.
func (s *Store) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// LoadFile reads a store from a file; a missing file yields an empty
// store, so first runs need no special casing.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return NewStore(), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
