package wisdom

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/param"
)

func TestKeyIncludesMachineSignature(t *testing.T) {
	k := Key("matmul", "n=1024")
	if !strings.HasPrefix(k, "matmul|n=1024|") {
		t.Errorf("key prefix wrong: %q", k)
	}
	if !strings.Contains(k, "/p") {
		t.Errorf("key lacks machine signature: %q", k)
	}
}

func TestKeyEscapesSeparators(t *testing.T) {
	// The collision hazard: before escaping, Key("a|b") and Key("a", "b")
	// built the same string, silently cross-pollinating wisdom between
	// unrelated contexts.
	if Key("a|b") == Key("a", "b") {
		t.Fatalf("Key(%q) collides with Key(%q, %q): %q", "a|b", "a", "b", Key("a|b"))
	}
	if Key(`a\`, "b") == Key(`a\|b`) {
		t.Fatalf("backslash part collides: %q", Key(`a\`, "b"))
	}
}

func TestKeyPartsRoundTrip(t *testing.T) {
	cases := [][]string{
		{"matmul", "n=1024"},
		{"a|b", "c"},
		{`back\slash`, `mix\|ed`},
		{""},
		{"", "|", `\`},
		{"ctx", "b0.lo", "scope|with|pipes"},
	}
	for _, parts := range cases {
		got := KeyParts(Key(parts...))
		// Key appends the machine signature as a trailing part.
		if len(got) != len(parts)+1 {
			t.Errorf("KeyParts(Key(%q)) = %q, want %d parts + signature", parts, got, len(parts))
			continue
		}
		for i, p := range parts {
			if got[i] != p {
				t.Errorf("part %d of %q round-tripped to %q", i, parts, got[i])
			}
		}
		if !strings.Contains(got[len(got)-1], "/p") {
			t.Errorf("trailing part %q is not the machine signature", got[len(got)-1])
		}
	}
}

func TestRecordKeepsOnlyImprovements(t *testing.T) {
	s := NewStore()
	if !s.Record("k", "a", param.Config{1}, 10) {
		t.Fatal("first record rejected")
	}
	if s.Record("k", "b", param.Config{2}, 12) {
		t.Fatal("worse record accepted")
	}
	e, ok := s.Lookup("k")
	if !ok || e.Algorithm != "a" || e.Value != 10 || e.Samples != 2 {
		t.Fatalf("entry after worse offer: %+v", e)
	}
	if !s.Record("k", "b", param.Config{2}, 8) {
		t.Fatal("better record rejected")
	}
	e, _ = s.Lookup("k")
	if e.Algorithm != "b" || e.Value != 8 || e.Samples != 3 {
		t.Fatalf("entry after improvement: %+v", e)
	}
}

func TestRecordCopiesConfig(t *testing.T) {
	s := NewStore()
	cfg := param.Config{1, 2}
	s.Record("k", "a", cfg, 5)
	cfg[0] = 99
	e, _ := s.Lookup("k")
	if e.Config[0] != 1 {
		t.Error("Record aliased the caller's config")
	}
	// Nil config is allowed (parameterless algorithms).
	s.Record("k2", "plain", nil, 1)
	if e, _ := s.Lookup("k2"); e.Config != nil {
		t.Error("nil config should stay nil")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.Record("k1", "a", param.Config{1.5, 2}, 10)
	s.Record("k2", "b", nil, 3)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d entries", loaded.Len())
	}
	e, ok := loaded.Lookup("k1")
	if !ok || e.Algorithm != "a" || e.Config[0] != 1.5 || e.Value != 10 {
		t.Fatalf("round trip lost data: %+v", e)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON did not error")
	}
	s, err := Load(strings.NewReader("null"))
	if err != nil || s.Len() != 0 {
		t.Error("null JSON should yield an empty store")
	}
}

func TestMerge(t *testing.T) {
	a := NewStore()
	a.Record("shared", "x", nil, 10)
	a.Record("only-a", "x", nil, 1)
	b := NewStore()
	b.Record("shared", "y", nil, 5) // better
	b.Record("only-b", "y", nil, 2)
	if changed := a.Merge(b); changed != 2 {
		t.Fatalf("Merge changed %d entries, want 2 (shared improved + only-b added)", changed)
	}
	if e, _ := a.Lookup("shared"); e.Algorithm != "y" || e.Value != 5 {
		t.Errorf("merge kept worse entry: %+v", e)
	}
	if a.Len() != 3 {
		t.Errorf("merged store has %d entries", a.Len())
	}
	// Merging back only adds only-a; equal values do not churn.
	if changed := b.Merge(a); changed != 1 {
		t.Errorf("reverse merge changed %d, want 1 (only-a)", changed)
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore()
	s.Record("zebra", "a", nil, 1)
	s.Record("alpha", "a", nil, 1)
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "alpha" || keys[1] != "zebra" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wisdom.json")
	// Missing file loads empty.
	s, err := LoadFile(path)
	if err != nil || s.Len() != 0 {
		t.Fatalf("missing file: %v, %d entries", err, s.Len())
	}
	s.Record("k", "a", param.Config{4}, 7)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	again, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := again.Lookup("k"); !ok || e.Value != 7 {
		t.Fatalf("file round trip lost entry: %+v ok=%v", e, ok)
	}
}

func TestConcurrentRecord(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Record("k", "a", param.Config{float64(g)}, float64(100-i))
			}
		}(g)
	}
	wg.Wait()
	e, ok := s.Lookup("k")
	if !ok || e.Value != 1 {
		t.Fatalf("concurrent best lost: %+v", e)
	}
	if e.Samples != 800 {
		t.Errorf("samples = %d, want 800", e.Samples)
	}
}
