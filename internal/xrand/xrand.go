// Package xrand provides a replayable random source for checkpointing.
//
// Resuming a tuner from disk must reproduce the exact decision sequence
// an uninterrupted run would have produced, and every stochastic choice
// in the tuner flows through a math/rand stream seeded at construction.
// math/rand does not expose its internal state, but the state of a
// seeded stream is fully determined by (seed, number of values drawn).
// Source wraps the standard source and counts draws, so a checkpoint can
// record the position and a restore can fast-forward a fresh stream to
// it. Fast-forwarding is linear in the position, which is bounded by the
// iteration count of the tuning run — microseconds at any realistic
// scale.
package xrand

import "math/rand"

// Source is a rand.Source64 that remembers its seed and counts the
// values drawn, so its exact stream position can be saved and restored.
// It is not safe for concurrent use, matching rand.NewSource.
type Source struct {
	seed  int64
	drawn uint64
	inner rand.Source64
}

// New returns a Source producing the same stream as rand.NewSource(seed).
func New(seed int64) *Source {
	return &Source{seed: seed, inner: rand.NewSource(seed).(rand.Source64)}
}

// Restore returns a Source fast-forwarded to the given position: the
// state a New(seed) source reaches after drawn values.
func Restore(seed int64, drawn uint64) *Source {
	s := New(seed)
	for i := uint64(0); i < drawn; i++ {
		s.inner.Uint64()
	}
	s.drawn = drawn
	return s
}

// Int63 draws the next value, counting it.
func (s *Source) Int63() int64 {
	s.drawn++
	return s.inner.Int63()
}

// Uint64 draws the next value, counting it.
func (s *Source) Uint64() uint64 {
	s.drawn++
	return s.inner.Uint64()
}

// Seed reseeds the source and resets the position.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.drawn = 0
	s.inner.Seed(seed)
}

// State returns the seed and the number of values drawn since it.
func (s *Source) State() (seed int64, drawn uint64) { return s.seed, s.drawn }

// Rand returns a *rand.Rand drawing from s. Every draw through the
// returned Rand advances (and counts in) s.
func (s *Source) Rand() *rand.Rand { return rand.New(s) }
